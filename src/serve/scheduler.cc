#include "serve/scheduler.h"

#include <future>
#include <utility>

#include "model/checkpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vist5 {
namespace serve {
namespace {

using Clock = std::chrono::steady_clock;

double Ms(Clock::duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}

int64_t Us(Clock::time_point t) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             t.time_since_epoch())
      .count();
}

/// How long the idle decode loop sleeps between control-plane checks
/// (pending reloads, shutdown). Requests arriving mid-sleep wake the loop
/// immediately through the queue's condition variable.
constexpr std::chrono::milliseconds kIdleWait{50};

/// Requests that cannot share the continuous batch: beam search reorders
/// the whole decode state, sampling consumes per-request RNG draws,
/// use_kv_cache=false is the full-prefix reference path, and speculative
/// requests (draft_k > 0) drive two models' caches through the
/// DraftVerifyEngine. They run alone between batches.
bool IsExclusive(const model::GenerationOptions& options) {
  return options.beam_size > 1 || options.temperature > 0.0f ||
         !options.use_kv_cache || options.draft_k > 0;
}

/// Admission-time validation for speculative requests (docs/SPECULATIVE.md):
/// a request that cannot run speculatively must be rejected loudly, never
/// silently decoded plain. Returns an empty string when admissible.
std::string SpecAdmissionError(const model::GenerationOptions& options,
                               const SchedulerOptions& sched) {
  if (options.draft_k <= 0) return "";
  if (sched.draft_model == nullptr) {
    return "speculative decoding unavailable: no draft model loaded";
  }
  if (options.beam_size > 1) {
    return "speculative decoding is greedy-only: beam_size must be 1";
  }
  if (options.temperature > 0.0f) {
    return "speculative decoding is greedy-only: temperature must be 0";
  }
  if (!options.use_kv_cache) {
    return "speculative decoding requires the KV-cached decode path";
  }
  if (options.weight_dtype != sched.draft_dtype) {
    return std::string("draft checkpoint is served at weight_dtype ") +
           WeightDtypeName(sched.draft_dtype) + "; request asked for " +
           WeightDtypeName(options.weight_dtype);
  }
  return "";
}

/// Emits the serve/req<id>/* span family reconstructing one request in the
/// Chrome trace: queue wait, prefill (admit -> first token), decode, and a
/// parent span covering the whole request. All on the scheduler thread, so
/// they nest by containment like ordinary scoped spans.
void EmitTimelineSpans(uint64_t id, const RequestTimeline& tl) {
  if (!obs::TraceEnabled()) return;
  const std::string tag = "serve/req" + std::to_string(id);
  obs::EmitSpan(tag, Us(tl.enqueue), Us(tl.finish));
  if (!tl.admitted) return;
  obs::EmitSpan(tag + "/queue_wait", Us(tl.enqueue), Us(tl.admit));
  if (tl.has_first_token) {
    obs::EmitSpan(tag + "/prefill", Us(tl.admit), Us(tl.first_token));
    obs::EmitSpan(tag + "/decode", Us(tl.first_token), Us(tl.finish));
  } else {
    obs::EmitSpan(tag + "/decode", Us(tl.admit), Us(tl.finish));
  }
}

}  // namespace

/// Scheduler-side bookkeeping for one admitted request.
struct BatchScheduler::Track {
  uint64_t id = 0;
  Completion done;
  RequestTimeline timeline;
  /// Pin on the request's encoder-prefix block (empty when the cache is
  /// off or the request never reached the decoder). Released in Finish.
  PrefixCache::Handle cache_handle;
  /// Stream subscriber (Request::on_token); empty for buffered requests.
  TokenCallback on_token;
  /// Tokens already published through on_token (the next seq number).
  size_t streamed = 0;
};

/// One parked Reload call: the path to load and the promise its caller
/// blocks on.
struct BatchScheduler::PendingReload {
  std::string path;
  std::promise<Status> done;
};

BatchScheduler::BatchScheduler(model::TransformerSeq2Seq* model,
                               const SchedulerOptions& options)
    : model_(model), options_(options), queue_(options.queue_capacity) {
  if (options.prefix_cache_bytes > 0) {
    PrefixCacheOptions cache_options;
    cache_options.max_bytes = options.prefix_cache_bytes;
    prefix_cache_ = std::make_unique<PrefixCache>(cache_options);
  }
  if (options.draft_model != nullptr) {
    spec_engine_ =
        std::make_unique<spec::DraftVerifyEngine>(model, options.draft_model);
  }
}

BatchScheduler::~BatchScheduler() { Shutdown(/*drain=*/false); }

void BatchScheduler::Start() {
  VIST5_CHECK(!started_.exchange(true)) << "BatchScheduler started twice";
  loop_ = std::thread(&BatchScheduler::Loop, this);
}

Status BatchScheduler::Submit(Request req, Completion done) {
  static obs::Counter* requests = obs::GetCounter("serve/requests");
  static obs::Counter* rejected = obs::GetCounter("serve/rejected");
  requests->Add();
  req.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  req.enqueue_time = Clock::now();
  req.deadline = req.options.deadline_ms > 0
                     ? req.enqueue_time +
                           std::chrono::milliseconds(req.options.deadline_ms)
                     : Clock::time_point::max();
  const uint64_t id = req.id;
  if (req.tokens.empty()) {
    Response r;
    r.id = id;
    r.status = ResponseStatus::kError;
    r.error = "empty token sequence";
    done(std::move(r));
    return Status::InvalidArgument("empty token sequence");
  }
  if (const std::string spec_error =
          SpecAdmissionError(req.options, options_);
      !spec_error.empty()) {
    static obs::Counter* spec_rejected =
        obs::GetCounter("spec/admission_rejected");
    spec_rejected->Add();
    Response r;
    r.id = id;
    r.status = ResponseStatus::kError;
    r.error = spec_error;
    done(std::move(r));
    return Status::InvalidArgument(spec_error);
  }
  // Keep a handle on the callback: Push consumes the entry even when it
  // rejects, and a rejected request still owes its caller a response.
  Completion on_reject = done;
  Status status = queue_.Push({std::move(req), std::move(done)});
  if (!status.ok()) {
    rejected->Add();
    Response r;
    r.id = id;
    r.status = ResponseStatus::kRejected;
    r.retry_after_ms = options_.retry_after_ms;
    r.error = std::string(status.message());
    on_reject(std::move(r));
  }
  return status;
}

Response BatchScheduler::SubmitAndWait(Request req) {
  auto promise = std::make_shared<std::promise<Response>>();
  std::future<Response> fut = promise->get_future();
  Submit(std::move(req),
         [promise](Response r) { promise->set_value(std::move(r)); });
  return fut.get();
}

Status BatchScheduler::Reload(const std::string& path) {
  {
    std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
    if (shut_down_ || !started_.load()) {
      // No decode loop is (or will be) stepping, so the swap is safe to
      // run inline on the caller's thread.
      return model::LoadCheckpoint(model_->CheckpointModule(), path);
    }
  }
  std::future<Status> done;
  {
    std::lock_guard<std::mutex> lock(reload_mu_);
    if (pending_reload_ != nullptr) {
      return Status::Unavailable("another reload is already in progress");
    }
    pending_reload_ = std::make_unique<PendingReload>();
    pending_reload_->path = path;
    done = pending_reload_->done.get_future();
    reload_pending_.store(true, std::memory_order_release);
  }
  return done.get();
}

void BatchScheduler::ServiceReload(bool aborting) {
  static obs::Counter* reloads = obs::GetCounter("serve/reloads");
  static obs::Histogram* reload_ms = obs::GetHistogram("serve/reload_ms");
  std::unique_ptr<PendingReload> pending;
  {
    std::lock_guard<std::mutex> lock(reload_mu_);
    pending = std::move(pending_reload_);
    reload_pending_.store(false, std::memory_order_release);
  }
  if (pending == nullptr) return;
  if (aborting) {
    pending->done.set_value(
        Status::Unavailable("scheduler shut down before the reload ran"));
    return;
  }
  VIST5_TRACE_SPAN("serve/reload");
  const Clock::time_point t0 = Clock::now();
  Status status = model::LoadCheckpoint(model_->CheckpointModule(),
                                        pending->path);
  if (status.ok()) {
    reloads->Add();
    reload_ms->Observe(Ms(Clock::now() - t0));
    if (prefix_cache_ != nullptr) {
      // Every cached block was computed under the old weights. Reloads
      // only run at a batch-empty boundary, so no pins are outstanding
      // and the whole index can drop.
      prefix_cache_->Clear();
      affinity_ref_.clear();
    }
  }
  pending->done.set_value(std::move(status));
}

void BatchScheduler::Shutdown(bool drain) {
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  if (!drain) abort_.store(true);
  queue_.Close();
  if (loop_.joinable()) {
    loop_.join();
    return;
  }
  // Never started: there is no loop to run the cleanup path, but queued
  // requests still owe their callers exactly one completion each.
  ServiceReload(/*aborting=*/true);
  RequestQueue::Entry entry;
  while (queue_.TryPop(&entry)) {
    Response r;
    r.id = entry.request.id;
    r.status = ResponseStatus::kShutdown;
    entry.done(std::move(r));
  }
}

void BatchScheduler::Finish(Track* track, ResponseStatus status,
                            std::vector<int> tokens) {
  static obs::Counter* completed = obs::GetCounter("serve/completed");
  static obs::Counter* expired = obs::GetCounter("serve/deadline_expired");
  static obs::Counter* tokens_out = obs::GetCounter("serve/tokens");
  static obs::Histogram* latency = obs::GetHistogram("serve/latency_ms");
  static obs::Histogram* tok_rate = obs::GetHistogram("serve/tokens_per_sec");
  if (prefix_cache_ != nullptr && track->cache_handle.block != nullptr) {
    // The row's decode state is gone by the time Finish runs, so the pin
    // can drop; the block stays resident (unpinned) for future hits
    // unless the LRU trim reclaims it.
    prefix_cache_->Release(track->cache_handle);
    track->cache_handle = PrefixCache::Handle{};
  }
  RequestTimeline& tl = track->timeline;
  tl.finish = Clock::now();
  Response r;
  r.id = track->id;
  r.status = status;
  r.tokens = std::move(tokens);
  r.queue_ms = tl.queue_wait_ms();
  r.ttft_ms = tl.ttft_ms();
  r.decode_ms = tl.decode_ms();
  r.total_ms = tl.total_ms();
  r.tokens_per_sec = tl.tokens_per_sec(r.tokens.size());
  r.timeline = tl;
  if (status == ResponseStatus::kOk ||
      status == ResponseStatus::kDeadlineExpired) {
    (status == ResponseStatus::kOk ? completed : expired)->Add();
    tokens_out->Add(static_cast<int64_t>(r.tokens.size()));
    latency->Observe(r.total_ms);
    if (r.tokens_per_sec > 0) tok_rate->Observe(r.tokens_per_sec);
    EmitTimelineSpans(track->id, tl);
  }
  track->done(std::move(r));
}

void BatchScheduler::AdmitGreedy(RequestQueue::Entry entry,
                                 model::ContinuousDecoder* decoder,
                                 std::vector<Track>* tracks) {
  static obs::Counter* joined = obs::GetCounter("serve/joined");
  static obs::Histogram* queue_wait =
      obs::GetHistogram("serve/queue_wait_ms");
  const Clock::time_point now = Clock::now();
  Request& req = entry.request;
  Track track;
  track.id = req.id;
  track.done = std::move(entry.done);
  track.on_token = std::move(req.on_token);
  track.timeline.enqueue = req.enqueue_time;
  track.timeline.admit = now;
  if (req.deadline <= now) {
    // Expired while queued: answer without paying for a prefill.
    Finish(&track, ResponseStatus::kDeadlineExpired, {});
    return;
  }
  track.timeline.admitted = true;
  queue_wait->Observe(track.timeline.queue_wait_ms());
  if (decoder->active() > 0) joined->Add();
  if (prefix_cache_ != nullptr) {
    track.cache_handle =
        prefix_cache_->Acquire(req.tokens, req.options.weight_dtype);
    if (!track.cache_handle.hit) {
      // Miss: compute the block once and donate it immediately, so
      // same-prefix requests already queued behind this one admit warm.
      track.cache_handle = prefix_cache_->Insert(
          model_->EncodePrefix(req.tokens, req.options.weight_dtype));
    }
    decoder->Admit(req.id, req.tokens, req.options, req.deadline,
                   track.cache_handle.block.get());
    if (options_.prefix_affinity) affinity_ref_ = req.tokens;
  } else {
    decoder->Admit(req.id, req.tokens, req.options, req.deadline);
  }
  tracks->push_back(std::move(track));
}

void BatchScheduler::RunExclusive(RequestQueue::Entry entry) {
  static obs::Counter* exclusive = obs::GetCounter("serve/exclusive");
  static obs::Histogram* queue_wait =
      obs::GetHistogram("serve/queue_wait_ms");
  VIST5_TRACE_SPAN("serve/exclusive");
  const Clock::time_point now = Clock::now();
  Request& req = entry.request;
  Track track;
  track.id = req.id;
  track.done = std::move(entry.done);
  track.on_token = std::move(req.on_token);
  track.timeline.enqueue = req.enqueue_time;
  track.timeline.admit = now;
  if (req.deadline <= now) {
    Finish(&track, ResponseStatus::kDeadlineExpired, {});
    return;
  }
  track.timeline.admitted = true;
  queue_wait->Observe(track.timeline.queue_wait_ms());
  exclusive->Add();
  model::GenerationOptions options = req.options;
  if (req.deadline != Clock::time_point::max()) {
    // Re-base the decode budget on what is left after queueing. Generate
    // returns its best-so-far result on expiry (status stays "ok" — the
    // model layer does not distinguish a deadline cut from EOS here).
    const double remaining = Ms(req.deadline - now);
    options.deadline_ms = remaining < 1.0 ? 1 : static_cast<int>(remaining);
  }
  std::vector<int> tokens;
  if (options.draft_k > 0) {
    // Speculative route (admission already validated the mode). The base
    // side shares the encoder-prefix cache with the batched path: a hit
    // splices the block's immutable cross K/V, a miss donates the freshly
    // computed block for requests queued behind this one.
    static obs::Counter* spec_requests = obs::GetCounter("spec/requests");
    spec_requests->Add();
    const model::EncodedPrefix* prefill = nullptr;
    if (prefix_cache_ != nullptr) {
      track.cache_handle =
          prefix_cache_->Acquire(req.tokens, options.weight_dtype);
      if (!track.cache_handle.hit) {
        track.cache_handle = prefix_cache_->Insert(
            model_->EncodePrefix(req.tokens, options.weight_dtype));
      }
      prefill = track.cache_handle.block.get();
      if (options_.prefix_affinity) affinity_ref_ = req.tokens;
    }
    spec::SpecStats stats;
    const Clock::time_point gen_start = Clock::now();
    // Stream subscribers receive speculative commits as accepted runs:
    // the engine fires on_commit per committed token right after each
    // verify round, and committed tokens are final (docs/SPECULATIVE.md).
    tokens = spec_engine_->Generate(req.tokens, options, prefill, &stats,
                                    track.on_token);
    if (stats.ttft_ms > 0) {
      // Generate has no per-step hook, so the timeline's first-token stamp
      // is reconstructed from the engine's measured time-to-first-commit.
      track.timeline.has_first_token = true;
      track.timeline.first_token =
          gen_start + std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double, std::milli>(
                              stats.ttft_ms));
    }
  } else {
    tokens = model_->Generate(req.tokens, options);
    if (track.on_token) {
      // Generate has no per-step hook (beam search in particular has no
      // committed prefix until the search ends), so the whole sequence
      // streams at completion — parity with the buffered response is
      // trivial, and the wire shape matches the batched path.
      for (size_t i = 0; i < tokens.size(); ++i) {
        track.on_token(tokens[i], i);
      }
    }
  }
  Finish(&track, ResponseStatus::kOk, std::move(tokens));
}

bool BatchScheduler::FillBatch(model::ContinuousDecoder* decoder,
                               std::vector<Track>* tracks,
                               RequestQueue::Entry* parked,
                               bool* have_parked) {
  while (!*have_parked && decoder->active() < options_.max_batch) {
    // A pending reload waits for a batch-empty boundary; admitting more
    // work would starve it, so pause admissions until it has run.
    if (reload_pending_.load(std::memory_order_acquire)) return false;
    RequestQueue::Entry entry;
    if (decoder->active() == 0) {
      // Idle: block until work arrives, the queue closes for good, or the
      // control-plane check interval elapses.
      switch (queue_.WaitAndPopFor(&entry, kIdleWait)) {
        case RequestQueue::PopStatus::kClosed:
          return true;
        case RequestQueue::PopStatus::kTimeout:
          return false;
        case RequestQueue::PopStatus::kItem:
          break;
      }
    } else {
      // Mid-flight: join whatever is already queued at this step
      // boundary, but never stall the running batch to wait for more.
      // With the prefix cache on, prefer the queued request sharing the
      // longest prefix with the last admission — same-schema requests
      // co-batch and land on warm blocks.
      const bool affine = prefix_cache_ != nullptr &&
                          options_.prefix_affinity &&
                          !affinity_ref_.empty();
      if (affine ? !queue_.TryPopPreferring(affinity_ref_, &entry)
                 : !queue_.TryPop(&entry)) {
        return false;
      }
    }
    if (IsExclusive(entry.request.options) ||
        (decoder->active() > 0 &&
         entry.request.options.weight_dtype != decoder->batch_dtype())) {
      // Cannot join the running batch: exclusive mode, or a greedy request
      // at a different weight dtype. Park it — later arrivals wait behind
      // it so admission order stays FIFO — and let the batch drain.
      *parked = std::move(entry);
      *have_parked = true;
    } else {
      AdmitGreedy(std::move(entry), decoder, tracks);
    }
  }
  return false;
}

void BatchScheduler::StepBatch(model::ContinuousDecoder* decoder,
                               std::vector<Track>* tracks) {
  static obs::Counter* steps = obs::GetCounter("serve/steps");
  static obs::Histogram* batch_size = obs::GetHistogram("serve/batch_size");
  static obs::Histogram* ttft = obs::GetHistogram("serve/ttft_ms");
  static obs::Histogram* step_ms = obs::GetHistogram("serve/step_ms");
  steps->Add();
  batch_size->Observe(static_cast<double>(decoder->active()));
  const Clock::time_point step_start = Clock::now();
  // Collect per-step emissions only when someone in the batch subscribed;
  // an all-buffered batch skips the extra bookkeeping entirely.
  bool any_stream = false;
  for (const Track& track : *tracks) {
    if (track.on_token) {
      any_stream = true;
      break;
    }
  }
  std::vector<model::ContinuousDecoder::Emitted> emitted;
  std::vector<model::ContinuousDecoder::Finished> finished =
      decoder->Step(any_stream ? &emitted : nullptr);
  const Clock::time_point now = Clock::now();
  step_ms->Observe(Ms(now - step_start));
  for (Track& track : *tracks) {
    ++track.timeline.decode_steps;
    if (!track.timeline.has_first_token) {
      track.timeline.has_first_token = true;
      track.timeline.first_token = now;
      ttft->Observe(track.timeline.ttft_ms());
    }
  }
  // Publish this step's committed tokens before any of the rows finish:
  // a subscriber always sees every stream token, then the final response.
  for (const model::ContinuousDecoder::Emitted& e : emitted) {
    for (Track& track : *tracks) {
      if (track.id != e.id) continue;
      if (track.on_token) track.on_token(e.token, track.streamed++);
      break;
    }
  }
  for (model::ContinuousDecoder::Finished& f : finished) {
    for (size_t i = 0; i < tracks->size(); ++i) {
      if ((*tracks)[i].id != f.id) continue;
      Finish(&(*tracks)[i],
             f.deadline_expired ? ResponseStatus::kDeadlineExpired
                                : ResponseStatus::kOk,
             std::move(f.tokens));
      tracks->erase(tracks->begin() + static_cast<long>(i));
      break;
    }
  }
}

void BatchScheduler::Loop() {
  VIST5_TRACE_SPAN("serve/loop");
  model::ContinuousDecoder decoder(model_);
  std::vector<Track> tracks;
  RequestQueue::Entry parked;
  bool have_parked = false;
  while (!abort_.load()) {
    if (reload_pending_.load(std::memory_order_acquire) &&
        decoder.active() == 0 && !have_parked) {
      ServiceReload(/*aborting=*/false);
    }
    const bool closed = FillBatch(&decoder, &tracks, &parked, &have_parked);
    if (abort_.load()) break;
    if (have_parked && decoder.active() == 0) {
      if (IsExclusive(parked.request.options)) {
        RunExclusive(std::move(parked));
      } else {
        // A dtype-mismatched greedy request: the old batch has drained, so
        // it seeds a fresh batch at its own dtype.
        AdmitGreedy(std::move(parked), &decoder, &tracks);
      }
      parked = RequestQueue::Entry{};
      have_parked = false;
      continue;
    }
    if (decoder.active() == 0) {
      if (closed) break;  // drain complete
      continue;
    }
    StepBatch(&decoder, &tracks);
  }
  // Abort path: whatever is still queued or mid-decode answers "shutdown"
  // so no caller is left hanging. (After a drain both loops are no-ops.)
  for (Track& track : tracks) {
    Finish(&track, ResponseStatus::kShutdown, {});
  }
  if (have_parked) {
    Track track;
    track.id = parked.request.id;
    track.done = std::move(parked.done);
    track.timeline.enqueue = parked.request.enqueue_time;
    track.timeline.admit = Clock::now();
    Finish(&track, ResponseStatus::kShutdown, {});
  }
  RequestQueue::Entry entry;
  while (queue_.TryPop(&entry)) {
    Track track;
    track.id = entry.request.id;
    track.done = std::move(entry.done);
    track.timeline.enqueue = entry.request.enqueue_time;
    track.timeline.admit = Clock::now();
    Finish(&track, ResponseStatus::kShutdown, {});
  }
  // A reload parked after the final FillBatch would otherwise strand its
  // caller; fail it explicitly. (A drain shutdown may legitimately still
  // hold one if Reload raced Close.)
  ServiceReload(/*aborting=*/true);
}

}  // namespace serve
}  // namespace vist5
