#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/metrics.h"

namespace vist5 {
namespace serve {
namespace {

bool SendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

Server::Server(BatchScheduler* scheduler, const text::Tokenizer* tokenizer,
               const ServerOptions& options)
    : scheduler_(scheduler), tokenizer_(tokenizer), options_(options) {}

Server::~Server() { Stop(/*drain=*/false); }

Status Server::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen host: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status s =
        Status::Internal(std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    const Status s =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);
  accept_thread_ = std::thread(&Server::AcceptLoop, this);
  return Status::OK();
}

void Server::Stop(bool drain) {
  if (stopping_.exchange(true)) return;
  const int lfd = listen_fd_.exchange(-1);
  if (lfd >= 0) {
    // Closing the listen socket is what unblocks the accept thread.
    ::shutdown(lfd, SHUT_RDWR);
    ::close(lfd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : conn_fds_) {
      if (fd < 0) continue;
      // SHUT_RD lets the request currently in flight write its response
      // (graceful drain); SHUT_RDWR cuts the connection outright.
      ::shutdown(fd, drain ? SHUT_RD : SHUT_RDWR);
    }
  }
  // The accept thread is joined, so no new connection threads can appear.
  for (std::thread& t : conn_threads_) {
    if (t.joinable()) t.join();
  }
  conn_threads_.clear();
}

void Server::AcceptLoop() {
  for (;;) {
    const int lfd = listen_fd_.load();
    if (lfd < 0) return;
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load() || errno != EINTR) return;
      continue;
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back(&Server::HandleConnection, this, fd);
  }
}

void Server::HandleConnection(int fd) {
  static obs::Counter* connections = obs::GetCounter("serve/connections");
  connections->Add();
  std::string buf;
  char chunk[4096];
  bool open = true;
  while (open) {
    size_t nl;
    while ((nl = buf.find('\n')) == std::string::npos) {
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        open = false;
        break;
      }
      buf.append(chunk, static_cast<size_t>(n));
    }
    if (!open) break;
    std::string line = buf.substr(0, nl);
    buf.erase(0, nl + 1);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    if (!SendAll(fd, HandleLine(line) + "\n")) break;
  }
  std::lock_guard<std::mutex> lock(conn_mu_);
  for (int& tracked : conn_fds_) {
    if (tracked == fd) tracked = -1;
  }
  ::close(fd);
}

JsonValue Server::ResponseToJson(const std::string& client_id,
                                 const Response& r, bool want_text) const {
  JsonValue out = JsonValue::Object();
  if (!client_id.empty()) out.Set("id", JsonValue::String(client_id));
  out.Set("status", JsonValue::String(ResponseStatusName(r.status)));
  if (r.status == ResponseStatus::kOk ||
      r.status == ResponseStatus::kDeadlineExpired) {
    JsonValue tokens = JsonValue::Array();
    for (int t : r.tokens) {
      tokens.Append(JsonValue::Number(static_cast<double>(t)));
    }
    out.Set("tokens", std::move(tokens));
    if (want_text && tokenizer_ != nullptr) {
      out.Set("text", JsonValue::String(tokenizer_->Decode(r.tokens)));
    }
    out.Set("queue_ms", JsonValue::Number(r.queue_ms));
    out.Set("ttft_ms", JsonValue::Number(r.ttft_ms));
    out.Set("total_ms", JsonValue::Number(r.total_ms));
  }
  if (r.status == ResponseStatus::kRejected) {
    out.Set("retry_after_ms", JsonValue::Number(r.retry_after_ms));
  }
  if (!r.error.empty()) out.Set("error", JsonValue::String(r.error));
  return out;
}

std::string Server::HandleLine(const std::string& line) {
  std::string client_id;
  const auto error_line = [&](const std::string& msg) {
    JsonValue out = JsonValue::Object();
    if (!client_id.empty()) out.Set("id", JsonValue::String(client_id));
    out.Set("status", JsonValue::String("error"));
    out.Set("error", JsonValue::String(msg));
    return out.ToString(/*pretty=*/false);
  };

  StatusOr<JsonValue> parsed = JsonValue::Parse(line);
  if (!parsed.ok()) return error_line(parsed.status().message());
  const JsonValue& doc = parsed.value();
  if (!doc.is_object()) return error_line("request must be a JSON object");
  if (const JsonValue* id = doc.Find("id")) {
    client_id =
        id->is_string() ? id->string_value() : id->ToString(/*pretty=*/false);
  }

  Request req;
  if (const JsonValue* toks = doc.Find("tokens")) {
    if (!toks->is_array()) return error_line("\"tokens\" must be an array");
    for (size_t i = 0; i < toks->size(); ++i) {
      if (!toks->at(i).is_number()) {
        return error_line("\"tokens\" must hold numbers");
      }
      req.tokens.push_back(static_cast<int>(toks->at(i).number_value()));
    }
  } else if (const JsonValue* txt = doc.Find("text")) {
    if (!txt->is_string()) return error_line("\"text\" must be a string");
    if (tokenizer_ == nullptr) {
      return error_line("server has no tokenizer; send \"tokens\"");
    }
    req.tokens = tokenizer_->Encode(txt->string_value());
  } else {
    return error_line("request needs \"text\" or \"tokens\"");
  }
  if (const JsonValue* v = doc.Find("max_len")) {
    req.options.max_len = static_cast<int>(v->number_value(48));
  }
  if (const JsonValue* v = doc.Find("beam")) {
    req.options.beam_size = static_cast<int>(v->number_value(1));
  }
  if (const JsonValue* v = doc.Find("deadline_ms")) {
    req.options.deadline_ms = static_cast<int>(v->number_value(0));
  }
  if (const JsonValue* v = doc.Find("priority")) {
    req.priority = static_cast<int>(v->number_value(0));
  }

  const Response response = scheduler_->SubmitAndWait(std::move(req));
  return ResponseToJson(client_id, response, /*want_text=*/true)
      .ToString(/*pretty=*/false);
}

}  // namespace serve
}  // namespace vist5
