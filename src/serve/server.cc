#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <utility>

#include "obs/exposition.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace vist5 {
namespace serve {
namespace {

/// True once enough bytes arrived to tell HTTP from line-JSON apart.
/// Generation requests are JSON objects, so they always start with '{'
/// (or whitespace); HTTP requests start with a method token.
bool LooksLikeHttp(const std::string& buf) {
  static const char* kMethods[] = {"GET ",    "POST ", "PUT ",
                                   "DELETE ", "HEAD ", "OPTIONS "};
  for (const char* m : kMethods) {
    if (buf.compare(0, std::strlen(m), m) == 0) return true;
  }
  return false;
}

/// Longest method prefix we may still be waiting on ("OPTIONS ").
constexpr size_t kSniffBytes = 8;

/// HTTP header blocks beyond this are dropped without a response.
constexpr size_t kMaxHttpHeaderBytes = 64 * 1024;

/// Event-loop tick: upper bound on how long idle sweeps, accept-backoff
/// re-arms, and stop checks can lag behind their trigger.
constexpr int kLoopTickMs = 50;

/// Backoff applied to the listener after a transient accept failure
/// (EMFILE and friends): the listener leaves the epoll set for this long
/// so a level-triggered ready listener does not spin the loop while the
/// process is out of fds.
constexpr std::chrono::milliseconds kAcceptBackoff{20};

std::string LowerAscii(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

/// Content-Length from a raw header block. Absent or digit-free headers
/// parse as 0 (no body); returns false when the digit run overflows
/// size_t — the old parser accumulated unchecked, so
/// "Content-Length: 18446744073709551616" silently wrapped around and any
/// huge-but-honest value was trusted by the body-read loop with no cap.
bool ParseContentLength(const std::string& headers, size_t* out) {
  *out = 0;
  const std::string lower = LowerAscii(headers);
  const size_t pos = lower.find("content-length:");
  if (pos == std::string::npos) return true;
  const char* p = lower.c_str() + pos + std::strlen("content-length:");
  while (*p == ' ' || *p == '\t') ++p;
  size_t n = 0;
  while (*p >= '0' && *p <= '9') {
    const size_t digit = static_cast<size_t>(*p++ - '0');
    if (n > (std::numeric_limits<size_t>::max() - digit) / 10) return false;
    n = n * 10 + digit;
  }
  *out = n;
  return true;
}

const char* HttpReason(int code) {
  switch (code) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 413:
      return "Payload Too Large";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
  }
  return "OK";
}

std::string JsonError(const std::string& msg) {
  JsonValue out = JsonValue::Object();
  out.Set("status", JsonValue::String("error"));
  out.Set("error", JsonValue::String(msg));
  return out.ToString(/*pretty=*/false);
}

const char* kJsonType = "application/json";

/// Wraps a route result into one full HTTP/1.1 response (the connection
/// closes after it, so no keep-alive headers).
std::string BuildHttpResponse(int code, const std::string& content_type,
                              const std::string& body) {
  return "HTTP/1.1 " + std::to_string(code) + " " + HttpReason(code) +
         "\r\nContent-Type: " + content_type +
         "\r\nContent-Length: " + std::to_string(body.size()) +
         "\r\nConnection: close\r\n\r\n" + body;
}

/// Reads an optional integer field, validating type and range. The
/// pre-validation server coerced malformed numerics through
/// number_value(fallback) — "max_len": "abc" silently became the default
/// and "max_len": -5 / "beam": 0 / "deadline_ms": -1 passed through to
/// the decoder unchecked. Absent fields leave *out untouched.
bool ReadIntField(const JsonValue& doc, const char* key, long long min_value,
                  long long max_value, int* out, std::string* error) {
  const JsonValue* v = doc.Find(key);
  if (v == nullptr) return true;
  if (!v->is_number()) {
    *error = std::string("\"") + key + "\" must be a number";
    return false;
  }
  const double d = v->number_value();
  if (!(d >= static_cast<double>(min_value)) ||
      !(d <= static_cast<double>(max_value)) || d != std::floor(d)) {
    *error = std::string("\"") + key + "\" must be an integer in [" +
             std::to_string(min_value) + ", " + std::to_string(max_value) +
             "]";
    return false;
  }
  *out = static_cast<int>(d);
  return true;
}

/// Serializes one scheduler response as the final wire line.
JsonValue ResponseToJson(const std::string& client_id, const Response& r,
                         const text::Tokenizer* tokenizer) {
  JsonValue out = JsonValue::Object();
  if (!client_id.empty()) out.Set("id", JsonValue::String(client_id));
  out.Set("status", JsonValue::String(ResponseStatusName(r.status)));
  if (r.status == ResponseStatus::kOk ||
      r.status == ResponseStatus::kDeadlineExpired) {
    JsonValue tokens = JsonValue::Array();
    for (int t : r.tokens) {
      tokens.Append(JsonValue::Number(static_cast<double>(t)));
    }
    out.Set("tokens", std::move(tokens));
    if (tokenizer != nullptr) {
      out.Set("text", JsonValue::String(tokenizer->Decode(r.tokens)));
    }
    out.Set("queue_ms", JsonValue::Number(r.queue_ms));
    out.Set("ttft_ms", JsonValue::Number(r.ttft_ms));
    out.Set("decode_ms", JsonValue::Number(r.decode_ms));
    out.Set("total_ms", JsonValue::Number(r.total_ms));
    out.Set("tokens_per_sec", JsonValue::Number(r.tokens_per_sec));
  }
  if (r.status == ResponseStatus::kRejected) {
    out.Set("retry_after_ms", JsonValue::Number(r.retry_after_ms));
  }
  if (!r.error.empty()) out.Set("error", JsonValue::String(r.error));
  return out;
}

/// One stream line: {"id": ..., "token": t, "seq": n}.
std::string StreamLine(const std::string& client_id, int token, size_t seq) {
  JsonValue out = JsonValue::Object();
  if (!client_id.empty()) out.Set("id", JsonValue::String(client_id));
  out.Set("token", JsonValue::Number(static_cast<double>(token)));
  out.Set("seq", JsonValue::Number(static_cast<double>(seq)));
  return out.ToString(/*pretty=*/false);
}

}  // namespace

/// How a piece of enqueued output changes the connection state machine.
enum class FinalKind {
  kNone,          ///< plain bytes (stream line, immediate error line)
  kLineResponse,  ///< final response line: the request slot frees up
  kHttpResponse,  ///< HTTP exchange complete: close once flushed
};

/// One accepted connection. Parse state (`in`, sniff flags, HTTP cursor,
/// `last_activity`) belongs to the loop thread alone. The write queue and
/// the flags scheduler callbacks flip live under `mu` — callbacks only
/// ever append bytes and mark state; every send(), close(), and epoll
/// operation happens on the loop thread.
struct Server::Conn {
  explicit Conn(int fd) : fd(fd) {}
  const int fd;

  // --- loop-thread-only parse state ---
  std::string in;
  bool sniffed = false;
  bool http = false;
  bool http_headers_done = false;
  bool http_dispatched = false;
  size_t http_body_start = 0;
  size_t http_content_length = 0;
  std::string http_method;
  std::string http_target;
  bool peer_closed = false;
  bool want_write = false;  ///< epoll interest currently includes EPOLLOUT
  std::chrono::steady_clock::time_point last_activity;

  // --- shared with scheduler callback threads ---
  std::mutex mu;
  std::string out;
  size_t out_off = 0;
  bool busy = false;  ///< a generation request is in flight on this conn
  bool overflow = false;  ///< write-queue bound blown: slow-reader drop
  bool close_after_flush = false;
  bool closed = false;  ///< loop detached the conn; enqueues are no-ops
};

/// Outlives the Server: scheduler callbacks capture it by shared_ptr, so a
/// completion arriving after Stop() still has a live dirty queue and an
/// open eventfd to write to (the writes are simply never read again).
struct Server::LoopShared {
  explicit LoopShared(size_t max_write_queue_bytes)
      : max_write_queue_bytes(max_write_queue_bytes) {
    wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  }
  ~LoopShared() {
    if (wake_fd >= 0) ::close(wake_fd);
  }

  void Wake() {
    const uint64_t one = 1;
    // The eventfd is a 64-bit counter; a full counter (EAGAIN) already
    // guarantees a pending wakeup, so the result can be ignored.
    const ssize_t n = ::write(wake_fd, &one, sizeof(one));
    (void)n;
  }

  /// Appends bytes to a connection's write queue (bounded) and wakes the
  /// loop. Callable from any thread; the only producer-side mutation.
  void Enqueue(const std::shared_ptr<Conn>& conn, std::string data,
               FinalKind kind) {
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (kind == FinalKind::kLineResponse) conn->busy = false;
      if (kind == FinalKind::kHttpResponse) conn->close_after_flush = true;
      if (!conn->closed && !conn->overflow) {
        const size_t pending = conn->out.size() - conn->out_off;
        if (pending + data.size() > max_write_queue_bytes) {
          // Never partially enqueue: the peer is too slow to keep its
          // stream coherent, so the loop drops the connection instead.
          conn->overflow = true;
        } else {
          conn->out += data;
        }
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      dirty.push_back(conn);
    }
    Wake();
  }

  const size_t max_write_queue_bytes;
  int wake_fd = -1;
  std::mutex mu;
  std::vector<std::shared_ptr<Conn>> dirty;
};

/// One in-flight POST /admin/reload. BatchScheduler::Reload blocks until
/// the decode loop reaches a batch-empty boundary, which can be seconds —
/// far too long to run on the event loop — so each reload gets a helper
/// thread that parks on Reload and enqueues the HTTP response when it
/// resolves.
struct Server::ReloadWorker {
  std::thread thread;
  std::atomic<bool> finished{false};
};

Server::Server(BatchScheduler* scheduler, const text::Tokenizer* tokenizer,
               const ServerOptions& options)
    : scheduler_(scheduler), tokenizer_(tokenizer), options_(options) {}

Server::~Server() { Stop(/*drain=*/false); }

Status Server::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen host: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status s =
        Status::Internal(std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    const Status s =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  shared_ = std::make_shared<LoopShared>(options_.max_write_queue_bytes);
  if (epoll_fd_ < 0 || shared_->wake_fd < 0) {
    const Status s = Status::Internal(
        std::string("epoll/eventfd: ") + std::strerror(errno));
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    epoll_fd_ = -1;
    ::close(listen_fd_);
    listen_fd_ = -1;
    shared_.reset();
    return s;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  accept_registered_ = true;
  ev.data.fd = shared_->wake_fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, shared_->wake_fd, &ev);

  // Touch every serve-frontend series so /metrics exposes them at zero
  // from the first scrape (scripts/check_metrics.sh asserts presence).
  obs::GetCounter("serve/connections");
  obs::GetCounter("serve/conn_rejected");
  obs::GetCounter("serve/conn_idle_closed");
  obs::GetCounter("serve/conn_slow_closed");
  obs::GetCounter("serve/http_requests");
  obs::GetCounter("serve/stream_requests");
  obs::GetCounter("serve/stream_tokens");
  obs::GetGauge("serve/active_connections");

  loop_thread_ = std::thread(&Server::Loop, this);
  return Status::OK();
}

void Server::Stop(bool drain) {
  if (stopping_.exchange(true)) {
    if (loop_thread_.joinable()) loop_thread_.join();
    return;
  }
  drain_on_stop_.store(drain);
  if (shared_ != nullptr) shared_->Wake();
  if (loop_thread_.joinable()) loop_thread_.join();
  ReapReloadThreads(/*all=*/true);
}

void Server::ReapReloadThreads(bool all) {
  std::vector<std::unique_ptr<ReloadWorker>> reap;
  {
    std::lock_guard<std::mutex> lock(reload_mu_);
    auto it = reload_workers_.begin();
    while (it != reload_workers_.end()) {
      if (all || (*it)->finished.load(std::memory_order_acquire)) {
        reap.push_back(std::move(*it));
        it = reload_workers_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const std::unique_ptr<ReloadWorker>& w : reap) {
    if (w->thread.joinable()) w->thread.join();
  }
}

void Server::Loop() {
  static obs::Gauge* active = obs::GetGauge("serve/active_connections");
  static obs::Counter* idle_closed = obs::GetCounter("serve/conn_idle_closed");
  using Clock = std::chrono::steady_clock;
  epoll_event events[64];
  for (;;) {
    const int n = ::epoll_wait(epoll_fd_, events, 64, kLoopTickMs);
    if (n < 0 && errno != EINTR) break;
    for (int i = 0; i < std::max(n, 0); ++i) {
      const int fd = events[i].data.fd;
      if (fd == shared_->wake_fd) {
        uint64_t drained;
        const ssize_t r = ::read(shared_->wake_fd, &drained, sizeof(drained));
        (void)r;
        continue;
      }
      if (fd == listen_fd_) {
        HandleAccept();
        continue;
      }
      const auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      std::shared_ptr<Conn> conn = it->second;
      if (events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) {
        HandleReadable(conn);
      } else if (events[i].events & EPOLLOUT) {
        Service(conn);
      }
    }

    // Connections scheduler callbacks touched since the last tick: flush
    // their new output, resume parsing if a request slot freed up.
    std::vector<std::shared_ptr<Conn>> dirty;
    {
      std::lock_guard<std::mutex> lock(shared_->mu);
      dirty.swap(shared_->dirty);
    }
    for (const std::shared_ptr<Conn>& conn : dirty) Service(conn);

    const Clock::time_point now = Clock::now();
    if (!accept_registered_ && !stopping_.load() &&
        now >= accept_backoff_until_) {
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = listen_fd_;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
      accept_registered_ = true;
    }

    if (options_.idle_timeout_ms > 0) {
      // A connection is idle only when nothing is happening on it in
      // either direction: no request decoding, no unflushed output. Time
      // spent generating never counts against the window (the blocking
      // server's SO_RCVTIMEO only ticked while waiting for the next
      // line).
      std::vector<std::shared_ptr<Conn>> expired;
      for (const auto& entry : conns_) {
        const std::shared_ptr<Conn>& conn = entry.second;
        bool quiet;
        {
          std::lock_guard<std::mutex> lock(conn->mu);
          quiet = !conn->busy && conn->out_off >= conn->out.size();
        }
        if (quiet &&
            now - conn->last_activity >
                std::chrono::milliseconds(options_.idle_timeout_ms)) {
          expired.push_back(conn);
        }
      }
      for (const std::shared_ptr<Conn>& conn : expired) {
        idle_closed->Add();
        CloseConn(conn);
      }
    }

    ReapReloadThreads(/*all=*/false);

    if (stopping_.load()) {
      if (!drain_on_stop_.load()) break;
      // Drain: stop accepting, let in-flight requests finish and flush,
      // close each connection as it quiesces, exit when none remain.
      if (accept_registered_) {
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
        accept_registered_ = false;
      }
      std::vector<std::shared_ptr<Conn>> open;
      open.reserve(conns_.size());
      for (const auto& entry : conns_) open.push_back(entry.second);
      for (const std::shared_ptr<Conn>& conn : open) {
        conn->peer_closed = true;  // no new requests; flush and close
        Service(conn);
      }
      if (conns_.empty()) break;
    }
  }
  // Teardown (loop thread owns every socket): mark conns closed so late
  // scheduler callbacks no-op, then release the fds.
  std::vector<std::shared_ptr<Conn>> open;
  open.reserve(conns_.size());
  for (const auto& entry : conns_) open.push_back(entry.second);
  for (const std::shared_ptr<Conn>& conn : open) CloseConn(conn);
  active->Set(0);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
}

void Server::HandleAccept() {
  static obs::Counter* connections = obs::GetCounter("serve/connections");
  static obs::Counter* conn_rejected = obs::GetCounter("serve/conn_rejected");
  static obs::Gauge* active = obs::GetGauge("serve/active_connections");
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      // Transient resource exhaustion (EMFILE, ENFILE, ENOBUFS, ENOMEM):
      // the listener must survive it. Back off briefly — deregistering
      // keeps the level-triggered listener from spinning the loop — and
      // retry once the window passes; pending connections stay in the
      // accept backlog meanwhile. Anything unexpected gets the same
      // treatment: a served request is worth more than a dead listener.
      VIST5_LOG(Warning) << "serve: accept failed (" << std::strerror(errno)
                         << "); retrying in " << kAcceptBackoff.count()
                         << "ms";
      accept_backoff_until_ =
          std::chrono::steady_clock::now() + kAcceptBackoff;
      if (accept_registered_) {
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
        accept_registered_ = false;
      }
      return;
    }
    if (options_.max_connections > 0 &&
        active_conns_.load() >= options_.max_connections) {
      conn_rejected->Add();
      JsonValue out = JsonValue::Object();
      out.Set("status", JsonValue::String("rejected"));
      out.Set("error", JsonValue::String("too many connections"));
      out.Set("retry_after_ms", JsonValue::Number(100));
      const std::string line = out.ToString(/*pretty=*/false) + "\n";
      // Best-effort: a fresh socket's buffer always has room for one
      // line; if the peer is already gone the close below handles it.
      const ssize_t sent =
          ::send(fd, line.data(), line.size(), MSG_NOSIGNAL);
      (void)sent;
      ::close(fd);
      continue;
    }
    if (options_.sndbuf_bytes > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.sndbuf_bytes,
                   sizeof(options_.sndbuf_bytes));
    }
    auto conn = std::make_shared<Conn>(fd);
    conn->last_activity = std::chrono::steady_clock::now();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    conns_.emplace(fd, std::move(conn));
    connections->Add();
    active_conns_.fetch_add(1);
    active->Set(static_cast<double>(active_conns_.load()));
  }
}

void Server::CloseConn(const std::shared_ptr<Conn>& conn) {
  static obs::Gauge* active = obs::GetGauge("serve/active_connections");
  const auto it = conns_.find(conn->fd);
  if (it == conns_.end() || it->second != conn) return;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->closed = true;
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  conns_.erase(it);
  active_conns_.fetch_sub(1);
  active->Set(static_cast<double>(active_conns_.load()));
}

void Server::UpdateInterest(const std::shared_ptr<Conn>& conn,
                            bool want_write) {
  if (conn->want_write == want_write) return;
  epoll_event ev{};
  ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0);
  ev.data.fd = conn->fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
  conn->want_write = want_write;
}

void Server::HandleReadable(const std::shared_ptr<Conn>& conn) {
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      conn->in.append(chunk, static_cast<size_t>(n));
      conn->last_activity = std::chrono::steady_clock::now();
      continue;
    }
    if (n == 0) {
      conn->peer_closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConn(conn);
    return;
  }
  // A line-protocol peer streaming an endless unterminated line would
  // grow the buffer without bound; cap it at the same limit HTTP bodies
  // get.
  if (!conn->http &&
      conn->in.size() > options_.max_http_body_bytes + kSniffBytes) {
    CloseConn(conn);
    return;
  }
  Service(conn);
}

void Server::Service(const std::shared_ptr<Conn>& conn) {
  static obs::Counter* slow_closed =
      obs::GetCounter("serve/conn_slow_closed");
  const auto it = conns_.find(conn->fd);
  if (it == conns_.end() || it->second != conn) return;  // already closed

  bool send_error = false;
  bool overflow = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    while (conn->out_off < conn->out.size()) {
      const ssize_t n =
          ::send(conn->fd, conn->out.data() + conn->out_off,
                 conn->out.size() - conn->out_off,
                 MSG_NOSIGNAL | MSG_DONTWAIT);
      if (n > 0) {
        conn->out_off += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      send_error = true;
      break;
    }
    if (conn->out_off >= conn->out.size()) {
      conn->out.clear();
      conn->out_off = 0;
    } else if (conn->out_off > 64 * 1024) {
      conn->out.erase(0, conn->out_off);
      conn->out_off = 0;
    }
    overflow = conn->overflow;
  }
  if (send_error) {
    CloseConn(conn);
    return;
  }
  if (overflow) {
    // The peer stopped reading long enough to fill both its socket
    // buffer and the bounded write queue. Dropping it is the contract
    // that keeps one stalled client from blocking the decode loop or
    // holding server memory (docs/SERVING.md).
    slow_closed->Add();
    VIST5_LOG(Warning) << "serve: dropping slow reader (write queue over "
                       << shared_->max_write_queue_bytes << " bytes)";
    CloseConn(conn);
    return;
  }

  ParseInput(conn);
  if (conns_.find(conn->fd) == conns_.end()) return;  // closed during parse

  bool pending;
  bool busy;
  bool close_after_flush;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    pending = conn->out_off < conn->out.size();
    busy = conn->busy;
    close_after_flush = conn->close_after_flush;
  }
  if (!pending) {
    if (close_after_flush) {
      CloseConn(conn);
      return;
    }
    if (conn->peer_closed && !busy) {
      // EOF and nothing left to answer. (Any complete buffered lines were
      // dispatched by ParseInput above, so this never drops a request.)
      CloseConn(conn);
      return;
    }
  }
  UpdateInterest(conn, pending);
}

void Server::ParseInput(const std::shared_ptr<Conn>& conn) {
  if (!conn->sniffed) {
    if (conn->in.size() < kSniffBytes &&
        conn->in.find('\n') == std::string::npos && !conn->peer_closed) {
      return;  // not enough bytes to tell the protocols apart yet
    }
    conn->sniffed = true;
    conn->http = LooksLikeHttp(conn->in);
  }

  if (conn->http) {
    if (conn->http_dispatched) return;  // one exchange per connection
    if (!conn->http_headers_done) {
      const size_t header_end = conn->in.find("\r\n\r\n");
      if (header_end == std::string::npos) {
        if (conn->in.size() > kMaxHttpHeaderBytes) CloseConn(conn);
        return;
      }
      const std::string headers = conn->in.substr(0, header_end);
      conn->http_headers_done = true;
      conn->http_body_start = header_end + 4;

      const size_t line_end = headers.find("\r\n");
      const std::string request_line = line_end == std::string::npos
                                           ? headers
                                           : headers.substr(0, line_end);
      const size_t sp1 = request_line.find(' ');
      const size_t sp2 = sp1 == std::string::npos
                             ? std::string::npos
                             : request_line.find(' ', sp1 + 1);
      if (sp1 != std::string::npos) {
        conn->http_method = request_line.substr(0, sp1);
        conn->http_target =
            sp2 == std::string::npos
                ? request_line.substr(sp1 + 1)
                : request_line.substr(sp1 + 1, sp2 - sp1 - 1);
      }
      // Strip any query string: routes are matched on the path alone.
      const size_t q = conn->http_target.find('?');
      if (q != std::string::npos) conn->http_target.resize(q);

      size_t content_length = 0;
      if (!ParseContentLength(headers, &content_length) ||
          content_length > options_.max_http_body_bytes) {
        conn->http_dispatched = true;
        shared_->Enqueue(
            conn,
            BuildHttpResponse(
                413, kJsonType,
                JsonError("request body exceeds " +
                          std::to_string(options_.max_http_body_bytes) +
                          " bytes")),
            FinalKind::kHttpResponse);
        return;
      }
      conn->http_content_length = content_length;
    }
    if (conn->in.size() - conn->http_body_start < conn->http_content_length) {
      if (conn->peer_closed) CloseConn(conn);  // truncated body, no reply
      return;
    }
    const std::string body =
        conn->in.substr(conn->http_body_start, conn->http_content_length);
    conn->http_dispatched = true;
    conn->in.clear();
    DispatchHttp(conn, conn->http_method, conn->http_target, body);
    return;
  }

  // Line protocol: dispatch buffered complete lines, one request in
  // flight at a time — responses on a connection stay in arrival order,
  // exactly like the thread-per-connection server behaved.
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->busy || conn->closed) return;
    }
    const size_t nl = conn->in.find('\n');
    if (nl == std::string::npos) return;
    std::string line = conn->in.substr(0, nl);
    conn->in.erase(0, nl + 1);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    DispatchLine(conn, line);
  }
}

void Server::DispatchHttp(const std::shared_ptr<Conn>& conn,
                          const std::string& method,
                          const std::string& target,
                          const std::string& body) {
  static obs::Counter* scrapes = obs::GetCounter("serve/http_requests");
  scrapes->Add();

  if (target == "/admin/reload") {
    if (method != "POST") {
      shared_->Enqueue(conn,
                       BuildHttpResponse(405, kJsonType,
                                         JsonError("use POST")),
                       FinalKind::kHttpResponse);
      return;
    }
    // Body is {"path": "..."} or, as a convenience, the raw path.
    std::string path = body;
    StatusOr<JsonValue> parsed = JsonValue::Parse(body);
    if (parsed.ok() && parsed.value().is_object()) {
      const JsonValue* p = parsed.value().Find("path");
      if (p == nullptr || !p->is_string()) {
        shared_->Enqueue(
            conn,
            BuildHttpResponse(400, kJsonType,
                              JsonError("body must carry a \"path\" string")),
            FinalKind::kHttpResponse);
        return;
      }
      path = p->string_value();
    }
    if (path.empty()) {
      shared_->Enqueue(conn,
                       BuildHttpResponse(400, kJsonType,
                                         JsonError("empty checkpoint path")),
                       FinalKind::kHttpResponse);
      return;
    }
    // Reload blocks until the decode loop reaches a batch-empty boundary;
    // park it on a helper thread so the event loop keeps serving streams
    // and scrapes meanwhile.
    VIST5_LOG(Info) << "serve: reloading checkpoint " << path;
    auto worker = std::make_unique<ReloadWorker>();
    ReloadWorker* raw = worker.get();
    std::shared_ptr<LoopShared> ls = shared_;
    BatchScheduler* scheduler = scheduler_;
    raw->thread = std::thread([ls, conn, scheduler, path, raw]() {
      const Status status = scheduler->Reload(path);
      std::string response;
      if (status.ok()) {
        JsonValue out = JsonValue::Object();
        out.Set("status", JsonValue::String("ok"));
        out.Set("path", JsonValue::String(path));
        response = BuildHttpResponse(200, kJsonType,
                                     out.ToString(/*pretty=*/false));
      } else {
        response = BuildHttpResponse(500, kJsonType,
                                     JsonError(std::string(status.message())));
      }
      ls->Enqueue(conn, response, FinalKind::kHttpResponse);
      raw->finished.store(true, std::memory_order_release);
    });
    std::lock_guard<std::mutex> lock(reload_mu_);
    reload_workers_.push_back(std::move(worker));
    return;
  }

  int code = 200;
  std::string content_type = kJsonType;
  const std::string response_body =
      RouteHttp(method, target, body, &code, &content_type);
  shared_->Enqueue(conn, BuildHttpResponse(code, content_type, response_body),
                   FinalKind::kHttpResponse);
}

std::string Server::RouteHttp(const std::string& method,
                              const std::string& target,
                              const std::string& body, int* code,
                              std::string* content_type) {
  const auto ok_json = [&](JsonValue out) {
    *code = 200;
    return out.ToString(/*pretty=*/false);
  };

  if (target == "/metrics") {
    if (method != "GET") {
      *code = 405;
      return JsonError("use GET");
    }
    // version=0.0.4 is the Prometheus text exposition format identifier.
    *content_type = "text/plain; version=0.0.4; charset=utf-8";
    return obs::RenderPrometheusText();
  }
  if (target == "/healthz") {
    if (method != "GET") {
      *code = 405;
      return JsonError("use GET");
    }
    std::string health_body;
    *code = EvaluateHealth(&health_body);
    return health_body;
  }
  if (target == "/admin/stats") {
    JsonValue out = JsonValue::Object();
    out.Set("metrics", obs::MetricsRegistry::Global().Snapshot());
    out.Set("queue_depth", JsonValue::Number(
                               static_cast<double>(scheduler_->queue_depth())));
    out.Set("active_connections",
            JsonValue::Number(static_cast<double>(active_conns_.load())));
    out.Set("draining", JsonValue::Bool(draining_.load()));
    if (const PrefixCache* cache = scheduler_->prefix_cache()) {
      const PrefixCacheStats s = cache->stats();
      const uint64_t lookups = s.hits + s.misses;
      JsonValue pc = JsonValue::Object();
      pc.Set("hits", JsonValue::Number(static_cast<double>(s.hits)));
      pc.Set("misses", JsonValue::Number(static_cast<double>(s.misses)));
      pc.Set("partial_hits",
             JsonValue::Number(static_cast<double>(s.partial_hits)));
      pc.Set("insertions",
             JsonValue::Number(static_cast<double>(s.insertions)));
      pc.Set("evictions",
             JsonValue::Number(static_cast<double>(s.evictions)));
      pc.Set("reuse_tokens",
             JsonValue::Number(static_cast<double>(s.reuse_tokens)));
      pc.Set("bytes", JsonValue::Number(static_cast<double>(s.bytes)));
      pc.Set("entries", JsonValue::Number(static_cast<double>(s.entries)));
      pc.Set("max_bytes",
             JsonValue::Number(static_cast<double>(cache->max_bytes())));
      pc.Set("hit_rate",
             JsonValue::Number(lookups > 0 ? static_cast<double>(s.hits) /
                                                 static_cast<double>(lookups)
                                           : 0.0));
      out.Set("prefix_cache", std::move(pc));
    }
    {
      // Speculative decoding rollup (docs/SPECULATIVE.md): cumulative
      // counters plus the derived acceptance rate and effective
      // tokens/step, so operators read the headline numbers without
      // digging through the raw metrics snapshot.
      const int64_t proposed = obs::GetCounter("spec/proposed")->value();
      const int64_t accepted = obs::GetCounter("spec/accepted")->value();
      const int64_t rejected = obs::GetCounter("spec/rejected")->value();
      const int64_t steps = obs::GetCounter("spec/steps")->value();
      JsonValue sp = JsonValue::Object();
      sp.Set("proposed", JsonValue::Number(static_cast<double>(proposed)));
      sp.Set("accepted", JsonValue::Number(static_cast<double>(accepted)));
      sp.Set("rejected", JsonValue::Number(static_cast<double>(rejected)));
      sp.Set("steps", JsonValue::Number(static_cast<double>(steps)));
      sp.Set("acceptance_rate",
             JsonValue::Number(proposed > 0
                                   ? static_cast<double>(accepted) /
                                         static_cast<double>(proposed)
                                   : 0.0));
      sp.Set("tokens_per_step",
             JsonValue::Number(
                 steps > 0 ? static_cast<double>(accepted + steps) /
                                 static_cast<double>(steps)
                           : 0.0));
      out.Set("spec", std::move(sp));
    }
    return ok_json(std::move(out));
  }
  if (target == "/admin/drain" || target == "/admin/resume") {
    if (method != "POST") {
      *code = 405;
      return JsonError("use POST");
    }
    draining_.store(target == "/admin/drain");
    VIST5_LOG(Warning) << "serve: " << (draining_.load() ? "draining"
                                                         : "resumed");
    JsonValue out = JsonValue::Object();
    out.Set("status", JsonValue::String("ok"));
    out.Set("draining", JsonValue::Bool(draining_.load()));
    return ok_json(std::move(out));
  }
  if (target == "/admin/loglevel") {
    if (method != "POST") {
      *code = 405;
      return JsonError("use POST");
    }
    std::string level = body;
    StatusOr<JsonValue> parsed = JsonValue::Parse(body);
    if (parsed.ok() && parsed.value().is_object()) {
      const JsonValue* l = parsed.value().Find("level");
      if (l != nullptr && l->is_string()) level = l->string_value();
    }
    level = LowerAscii(level);
    // Trim whitespace a raw body may carry.
    const size_t b = level.find_first_not_of(" \t\r\n\"");
    const size_t e = level.find_last_not_of(" \t\r\n\"");
    level = b == std::string::npos ? "" : level.substr(b, e - b + 1);
    LogSeverity severity;
    if (level == "info") {
      severity = LogSeverity::kInfo;
    } else if (level == "warn" || level == "warning") {
      severity = LogSeverity::kWarning;
    } else if (level == "error") {
      severity = LogSeverity::kError;
    } else if (level == "fatal") {
      severity = LogSeverity::kFatal;
    } else {
      *code = 400;
      return JsonError("unknown level \"" + level +
                       "\" (info|warn|error|fatal)");
    }
    SetMinLogSeverity(severity);
    JsonValue out = JsonValue::Object();
    out.Set("status", JsonValue::String("ok"));
    out.Set("level", JsonValue::String(level));
    return ok_json(std::move(out));
  }
  *code = 404;
  return JsonError("no route for " + target);
}

int Server::EvaluateHealth(std::string* body) const {
  // 0 = ok, 1 = degraded (warn crossed), 2 = unhealthy (crit crossed).
  int worst = 0;
  JsonValue checks = JsonValue::Object();
  const auto check = [&](const char* name, double value, double warn,
                         double crit) {
    int level = 0;
    if (crit > 0 && value >= crit) {
      level = 2;
    } else if (warn > 0 && value >= warn) {
      level = 1;
    }
    worst = std::max(worst, level);
    JsonValue c = JsonValue::Object();
    c.Set("value", JsonValue::Number(value));
    c.Set("status", JsonValue::String(level == 0   ? "ok"
                                      : level == 1 ? "degraded"
                                                   : "unhealthy"));
    checks.Set(name, std::move(c));
  };

  const HealthThresholds& h = options_.health;
  check("queue_depth", static_cast<double>(scheduler_->queue_depth()),
        h.queue_depth_warn, h.queue_depth_crit);
  static obs::Histogram* latency = obs::GetHistogram("serve/latency_ms");
  check("latency_p99_ms", latency->Quantile(0.99), h.p99_ms_warn,
        h.p99_ms_crit);
  static obs::Counter* requests = obs::GetCounter("serve/requests");
  static obs::Counter* rejected = obs::GetCounter("serve/rejected");
  const int64_t total = requests->value();
  const double frac =
      total > 0 ? static_cast<double>(rejected->value()) /
                      static_cast<double>(total)
                : 0.0;
  check("reject_frac", frac, h.reject_frac_warn, h.reject_frac_crit);

  JsonValue out = JsonValue::Object();
  out.Set("status", JsonValue::String(worst == 0   ? "ok"
                                      : worst == 1 ? "degraded"
                                                   : "unhealthy"));
  out.Set("draining", JsonValue::Bool(draining_.load()));
  out.Set("checks", std::move(checks));
  *body = out.ToString(/*pretty=*/false);
  // Degraded still answers 200: the instance serves, operators alert on
  // the body. Unhealthy answers 503 so load balancers stop routing to it.
  return worst < 2 ? 200 : 503;
}

void Server::DispatchLine(const std::shared_ptr<Conn>& conn,
                          const std::string& line) {
  static obs::Counter* stream_requests =
      obs::GetCounter("serve/stream_requests");
  std::string client_id;
  const auto error_line = [&](const std::string& msg) {
    JsonValue out = JsonValue::Object();
    if (!client_id.empty()) out.Set("id", JsonValue::String(client_id));
    out.Set("status", JsonValue::String("error"));
    out.Set("error", JsonValue::String(msg));
    return out.ToString(/*pretty=*/false);
  };
  // Immediate failures answer without occupying the connection's request
  // slot: the next buffered line can dispatch right away.
  const auto answer = [&](const std::string& response) {
    shared_->Enqueue(conn, response + "\n", FinalKind::kNone);
  };

  StatusOr<JsonValue> parsed = JsonValue::Parse(line);
  if (!parsed.ok()) {
    answer(error_line(std::string(parsed.status().message())));
    return;
  }
  const JsonValue& doc = parsed.value();
  if (!doc.is_object()) {
    answer(error_line("request must be a JSON object"));
    return;
  }
  if (const JsonValue* id = doc.Find("id")) {
    client_id =
        id->is_string() ? id->string_value() : id->ToString(/*pretty=*/false);
  }

  if (draining_.load()) {
    JsonValue out = JsonValue::Object();
    if (!client_id.empty()) out.Set("id", JsonValue::String(client_id));
    out.Set("status", JsonValue::String("rejected"));
    out.Set("error", JsonValue::String("draining"));
    out.Set("retry_after_ms", JsonValue::Number(1000));
    answer(out.ToString(/*pretty=*/false));
    return;
  }

  Request req;
  if (const JsonValue* toks = doc.Find("tokens")) {
    if (!toks->is_array()) {
      answer(error_line("\"tokens\" must be an array"));
      return;
    }
    for (size_t i = 0; i < toks->size(); ++i) {
      if (!toks->at(i).is_number()) {
        answer(error_line("\"tokens\" must hold numbers"));
        return;
      }
      req.tokens.push_back(static_cast<int>(toks->at(i).number_value()));
    }
  } else if (const JsonValue* txt = doc.Find("text")) {
    if (!txt->is_string()) {
      answer(error_line("\"text\" must be a string"));
      return;
    }
    if (tokenizer_ == nullptr) {
      answer(error_line("server has no tokenizer; send \"tokens\""));
      return;
    }
    req.tokens = tokenizer_->Encode(txt->string_value());
  } else {
    answer(error_line("request needs \"text\" or \"tokens\""));
    return;
  }
  std::string field_error;
  if (!ReadIntField(doc, "max_len", 1, 4096, &req.options.max_len,
                    &field_error) ||
      !ReadIntField(doc, "beam", 1, 64, &req.options.beam_size,
                    &field_error) ||
      !ReadIntField(doc, "deadline_ms", 0, 86400000,
                    &req.options.deadline_ms, &field_error) ||
      !ReadIntField(doc, "priority", -1000000, 1000000, &req.priority,
                    &field_error)) {
    answer(error_line(field_error));
    return;
  }
  if (const JsonValue* v = doc.Find("weight_dtype")) {
    if (!v->is_string()) {
      answer(error_line("\"weight_dtype\" must be a string"));
      return;
    }
    const std::string& dtype = v->string_value();
    if (dtype == "int8") {
      req.options.weight_dtype = WeightDtype::kInt8;
    } else if (dtype != "float32") {
      answer(error_line("\"weight_dtype\" must be \"float32\" or \"int8\""));
      return;
    }
  }
  // Speculative decoding: "draft": k asks for up to k draft tokens per
  // verify round (the server-wide default applies when the field is
  // absent, and "draft": 0 opts out of it); "draft_adaptive": false pins
  // the proposal length at k.
  // Mode conflicts (beam > 1, temperature, no draft model loaded, dtype
  // mismatch) are rejected by the scheduler's admission guard with a clear
  // error rather than silently decoded plain (docs/SPECULATIVE.md).
  req.options.draft_k = options_.default_draft_k;
  if (!ReadIntField(doc, "draft", 0, 1024, &req.options.draft_k,
                    &field_error)) {
    answer(error_line(field_error));
    return;
  }
  if (const JsonValue* v = doc.Find("draft_adaptive")) {
    if (!v->is_bool()) {
      answer(error_line("\"draft_adaptive\" must be a bool"));
      return;
    }
    req.options.draft_adaptive = v->bool_value();
  }

  bool stream = false;
  if (const JsonValue* v = doc.Find("stream")) {
    if (!v->is_bool()) {
      answer(error_line("\"stream\" must be a bool"));
      return;
    }
    stream = v->bool_value();
  }

  // Everything a callback touches is captured by value or shared_ptr —
  // never `this` — so completions arriving after the server is gone only
  // append to a closed connection and wake a loop that no longer reads.
  std::shared_ptr<LoopShared> ls = shared_;
  if (stream) {
    stream_requests->Add();
    req.on_token = [ls, conn, client_id](int token, size_t seq) {
      static obs::Counter* stream_tokens =
          obs::GetCounter("serve/stream_tokens");
      stream_tokens->Add();
      ls->Enqueue(conn, StreamLine(client_id, token, seq) + "\n",
                  FinalKind::kNone);
    };
  }
  const text::Tokenizer* tokenizer = tokenizer_;
  Completion done = [ls, conn, client_id, tokenizer](Response r) {
    ls->Enqueue(conn,
                ResponseToJson(client_id, r, tokenizer)
                        .ToString(/*pretty=*/false) +
                    "\n",
                FinalKind::kLineResponse);
  };
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->busy = true;
  }
  // Submit never blocks: backpressure rejections invoke `done` inline
  // (on this thread), which clears `busy` again through the enqueue path.
  scheduler_->Submit(std::move(req), std::move(done));
}

}  // namespace serve
}  // namespace vist5
