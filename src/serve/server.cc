#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/exposition.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace vist5 {
namespace serve {
namespace {

bool SendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

/// True once enough bytes arrived to tell HTTP from line-JSON apart.
/// Generation requests are JSON objects, so they always start with '{'
/// (or whitespace); HTTP requests start with a method token.
bool LooksLikeHttp(const std::string& buf) {
  static const char* kMethods[] = {"GET ",    "POST ", "PUT ",
                                   "DELETE ", "HEAD ", "OPTIONS "};
  for (const char* m : kMethods) {
    if (buf.compare(0, std::strlen(m), m) == 0) return true;
  }
  return false;
}

/// Longest method prefix we may still be waiting on ("OPTIONS ").
constexpr size_t kSniffBytes = 8;

std::string LowerAscii(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

/// Content-Length from a raw header block; 0 when absent or malformed.
size_t ParseContentLength(const std::string& headers) {
  const std::string lower = LowerAscii(headers);
  const size_t pos = lower.find("content-length:");
  if (pos == std::string::npos) return 0;
  const char* p = lower.c_str() + pos + std::strlen("content-length:");
  while (*p == ' ' || *p == '\t') ++p;
  size_t n = 0;
  while (*p >= '0' && *p <= '9') n = n * 10 + static_cast<size_t>(*p++ - '0');
  return n;
}

const char* HttpReason(int code) {
  switch (code) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
  }
  return "OK";
}

std::string JsonError(const std::string& msg) {
  JsonValue out = JsonValue::Object();
  out.Set("status", JsonValue::String("error"));
  out.Set("error", JsonValue::String(msg));
  return out.ToString(/*pretty=*/false);
}

const char* kJsonType = "application/json";

}  // namespace

Server::Server(BatchScheduler* scheduler, const text::Tokenizer* tokenizer,
               const ServerOptions& options)
    : scheduler_(scheduler), tokenizer_(tokenizer), options_(options) {}

Server::~Server() { Stop(/*drain=*/false); }

Status Server::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen host: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status s =
        Status::Internal(std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    const Status s =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);
  accept_thread_ = std::thread(&Server::AcceptLoop, this);
  return Status::OK();
}

void Server::Stop(bool drain) {
  if (stopping_.exchange(true)) return;
  const int lfd = listen_fd_.exchange(-1);
  if (lfd >= 0) {
    // Closing the listen socket is what unblocks the accept thread.
    ::shutdown(lfd, SHUT_RDWR);
    ::close(lfd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (const std::unique_ptr<Conn>& conn : conns_) {
      if (conn->fd < 0) continue;
      // SHUT_RD lets the request currently in flight write its response
      // (graceful drain); SHUT_RDWR cuts the connection outright.
      ::shutdown(conn->fd, drain ? SHUT_RD : SHUT_RDWR);
    }
  }
  // The accept thread is joined, so no new connections can appear.
  for (const std::unique_ptr<Conn>& conn : conns_) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  conns_.clear();
}

void Server::ReapConnections() {
  std::lock_guard<std::mutex> lock(conn_mu_);
  auto it = conns_.begin();
  while (it != conns_.end()) {
    if ((*it)->finished.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::AcceptLoop() {
  static obs::Counter* conn_rejected = obs::GetCounter("serve/conn_rejected");
  for (;;) {
    const int lfd = listen_fd_.load();
    if (lfd < 0) return;
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load() || errno != EINTR) return;
      continue;
    }
    ReapConnections();
    if (options_.max_connections > 0 &&
        active_conns_.load() >= options_.max_connections) {
      conn_rejected->Add();
      JsonValue out = JsonValue::Object();
      out.Set("status", JsonValue::String("rejected"));
      out.Set("error", JsonValue::String("too many connections"));
      out.Set("retry_after_ms", JsonValue::Number(100));
      SendAll(fd, out.ToString(/*pretty=*/false) + "\n");
      ::close(fd);
      continue;
    }
    if (options_.idle_timeout_ms > 0) {
      timeval tv{};
      tv.tv_sec = options_.idle_timeout_ms / 1000;
      tv.tv_usec = (options_.idle_timeout_ms % 1000) * 1000;
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    }
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    Conn* raw = conn.get();
    active_conns_.fetch_add(1);
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      conns_.push_back(std::move(conn));
    }
    raw->thread = std::thread(&Server::HandleConnection, this, raw);
  }
}

void Server::HandleConnection(Conn* conn) {
  static obs::Counter* connections = obs::GetCounter("serve/connections");
  static obs::Counter* idle_closed =
      obs::GetCounter("serve/conn_idle_closed");
  static obs::Gauge* active = obs::GetGauge("serve/active_connections");
  connections->Add();
  active->Set(static_cast<double>(active_conns_.load()));
  const int fd = conn->fd;
  std::string buf;
  char chunk[4096];
  bool open = true;
  bool timed_out = false;
  bool sniffed = false;
  while (open) {
    size_t nl;
    while ((nl = buf.find('\n')) == std::string::npos) {
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        // SO_RCVTIMEO surfaces as EAGAIN/EWOULDBLOCK: the idle window
        // elapsed with no bytes, so drop the connection.
        timed_out = n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK);
        open = false;
        break;
      }
      buf.append(chunk, static_cast<size_t>(n));
      // Protocol sniff on the first bytes only: once a connection speaks
      // HTTP it is handed off whole and closed after one exchange.
      if (!sniffed && buf.size() >= kSniffBytes) {
        sniffed = true;
        if (LooksLikeHttp(buf)) {
          HandleHttp(fd, std::move(buf));
          open = false;
          break;
        }
      }
    }
    if (!open) break;
    if (!sniffed) {
      sniffed = true;
      if (LooksLikeHttp(buf)) {
        HandleHttp(fd, std::move(buf));
        break;
      }
    }
    std::string line = buf.substr(0, nl);
    buf.erase(0, nl + 1);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    if (!SendAll(fd, HandleLine(line) + "\n")) break;
  }
  if (timed_out) idle_closed->Add();
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    ::close(fd);
    conn->fd = -1;
  }
  active_conns_.fetch_sub(1);
  active->Set(static_cast<double>(active_conns_.load()));
  conn->finished.store(true, std::memory_order_release);
}

void Server::HandleHttp(int fd, std::string buf) {
  static obs::Counter* scrapes = obs::GetCounter("serve/http_requests");
  // Read until the header block is complete, then the declared body.
  size_t header_end;
  char chunk[4096];
  while ((header_end = buf.find("\r\n\r\n")) == std::string::npos) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return;
    buf.append(chunk, static_cast<size_t>(n));
    if (buf.size() > 64 * 1024) return;  // oversized header block
  }
  const std::string headers = buf.substr(0, header_end);
  const size_t body_start = header_end + 4;
  const size_t content_length = ParseContentLength(headers);
  while (buf.size() - body_start < content_length) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return;
    buf.append(chunk, static_cast<size_t>(n));
  }
  const std::string body = buf.substr(body_start, content_length);

  const size_t line_end = headers.find("\r\n");
  const std::string request_line =
      line_end == std::string::npos ? headers : headers.substr(0, line_end);
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : request_line.find(' ', sp1 + 1);
  std::string method, target;
  if (sp1 != std::string::npos) {
    method = request_line.substr(0, sp1);
    target = sp2 == std::string::npos
                 ? request_line.substr(sp1 + 1)
                 : request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  }
  // Strip any query string: routes are matched on the path alone.
  const size_t q = target.find('?');
  if (q != std::string::npos) target.resize(q);

  scrapes->Add();
  int code = 200;
  std::string content_type = kJsonType;
  const std::string response_body =
      RouteHttp(method, target, body, &code, &content_type);
  std::string response = "HTTP/1.1 " + std::to_string(code) + " " +
                         HttpReason(code) +
                         "\r\nContent-Type: " + content_type +
                         "\r\nContent-Length: " +
                         std::to_string(response_body.size()) +
                         "\r\nConnection: close\r\n\r\n" + response_body;
  SendAll(fd, response);
}

std::string Server::RouteHttp(const std::string& method,
                              const std::string& target,
                              const std::string& body, int* code,
                              std::string* content_type) {
  const auto ok_json = [&](JsonValue out) {
    *code = 200;
    return out.ToString(/*pretty=*/false);
  };

  if (target == "/metrics") {
    if (method != "GET") {
      *code = 405;
      return JsonError("use GET");
    }
    // version=0.0.4 is the Prometheus text exposition format identifier.
    *content_type = "text/plain; version=0.0.4; charset=utf-8";
    return obs::RenderPrometheusText();
  }
  if (target == "/healthz") {
    if (method != "GET") {
      *code = 405;
      return JsonError("use GET");
    }
    std::string health_body;
    *code = EvaluateHealth(&health_body);
    return health_body;
  }
  if (target == "/admin/stats") {
    JsonValue out = JsonValue::Object();
    out.Set("metrics", obs::MetricsRegistry::Global().Snapshot());
    out.Set("queue_depth", JsonValue::Number(
                               static_cast<double>(scheduler_->queue_depth())));
    out.Set("active_connections",
            JsonValue::Number(static_cast<double>(active_conns_.load())));
    out.Set("draining", JsonValue::Bool(draining_.load()));
    if (const PrefixCache* cache = scheduler_->prefix_cache()) {
      const PrefixCacheStats s = cache->stats();
      const uint64_t lookups = s.hits + s.misses;
      JsonValue pc = JsonValue::Object();
      pc.Set("hits", JsonValue::Number(static_cast<double>(s.hits)));
      pc.Set("misses", JsonValue::Number(static_cast<double>(s.misses)));
      pc.Set("partial_hits",
             JsonValue::Number(static_cast<double>(s.partial_hits)));
      pc.Set("insertions",
             JsonValue::Number(static_cast<double>(s.insertions)));
      pc.Set("evictions",
             JsonValue::Number(static_cast<double>(s.evictions)));
      pc.Set("reuse_tokens",
             JsonValue::Number(static_cast<double>(s.reuse_tokens)));
      pc.Set("bytes", JsonValue::Number(static_cast<double>(s.bytes)));
      pc.Set("entries", JsonValue::Number(static_cast<double>(s.entries)));
      pc.Set("max_bytes",
             JsonValue::Number(static_cast<double>(cache->max_bytes())));
      pc.Set("hit_rate",
             JsonValue::Number(lookups > 0 ? static_cast<double>(s.hits) /
                                                 static_cast<double>(lookups)
                                           : 0.0));
      out.Set("prefix_cache", std::move(pc));
    }
    {
      // Speculative decoding rollup (docs/SPECULATIVE.md): cumulative
      // counters plus the derived acceptance rate and effective
      // tokens/step, so operators read the headline numbers without
      // digging through the raw metrics snapshot.
      const int64_t proposed = obs::GetCounter("spec/proposed")->value();
      const int64_t accepted = obs::GetCounter("spec/accepted")->value();
      const int64_t rejected = obs::GetCounter("spec/rejected")->value();
      const int64_t steps = obs::GetCounter("spec/steps")->value();
      JsonValue sp = JsonValue::Object();
      sp.Set("proposed", JsonValue::Number(static_cast<double>(proposed)));
      sp.Set("accepted", JsonValue::Number(static_cast<double>(accepted)));
      sp.Set("rejected", JsonValue::Number(static_cast<double>(rejected)));
      sp.Set("steps", JsonValue::Number(static_cast<double>(steps)));
      sp.Set("acceptance_rate",
             JsonValue::Number(proposed > 0
                                   ? static_cast<double>(accepted) /
                                         static_cast<double>(proposed)
                                   : 0.0));
      sp.Set("tokens_per_step",
             JsonValue::Number(
                 steps > 0 ? static_cast<double>(accepted + steps) /
                                 static_cast<double>(steps)
                           : 0.0));
      out.Set("spec", std::move(sp));
    }
    return ok_json(std::move(out));
  }
  if (target == "/admin/drain" || target == "/admin/resume") {
    if (method != "POST") {
      *code = 405;
      return JsonError("use POST");
    }
    draining_.store(target == "/admin/drain");
    VIST5_LOG(Warning) << "serve: " << (draining_.load() ? "draining"
                                                         : "resumed");
    JsonValue out = JsonValue::Object();
    out.Set("status", JsonValue::String("ok"));
    out.Set("draining", JsonValue::Bool(draining_.load()));
    return ok_json(std::move(out));
  }
  if (target == "/admin/reload") {
    if (method != "POST") {
      *code = 405;
      return JsonError("use POST");
    }
    // Body is {"path": "..."} or, as a convenience, the raw path.
    std::string path = body;
    StatusOr<JsonValue> parsed = JsonValue::Parse(body);
    if (parsed.ok() && parsed.value().is_object()) {
      const JsonValue* p = parsed.value().Find("path");
      if (p == nullptr || !p->is_string()) {
        *code = 400;
        return JsonError("body must carry a \"path\" string");
      }
      path = p->string_value();
    }
    if (path.empty()) {
      *code = 400;
      return JsonError("empty checkpoint path");
    }
    VIST5_LOG(Info) << "serve: reloading checkpoint " << path;
    const Status status = scheduler_->Reload(path);
    if (!status.ok()) {
      *code = 500;
      return JsonError(std::string(status.message()));
    }
    JsonValue out = JsonValue::Object();
    out.Set("status", JsonValue::String("ok"));
    out.Set("path", JsonValue::String(path));
    return ok_json(std::move(out));
  }
  if (target == "/admin/loglevel") {
    if (method != "POST") {
      *code = 405;
      return JsonError("use POST");
    }
    std::string level = body;
    StatusOr<JsonValue> parsed = JsonValue::Parse(body);
    if (parsed.ok() && parsed.value().is_object()) {
      const JsonValue* l = parsed.value().Find("level");
      if (l != nullptr && l->is_string()) level = l->string_value();
    }
    level = LowerAscii(level);
    // Trim whitespace a raw body may carry.
    const size_t b = level.find_first_not_of(" \t\r\n\"");
    const size_t e = level.find_last_not_of(" \t\r\n\"");
    level = b == std::string::npos ? "" : level.substr(b, e - b + 1);
    LogSeverity severity;
    if (level == "info") {
      severity = LogSeverity::kInfo;
    } else if (level == "warn" || level == "warning") {
      severity = LogSeverity::kWarning;
    } else if (level == "error") {
      severity = LogSeverity::kError;
    } else if (level == "fatal") {
      severity = LogSeverity::kFatal;
    } else {
      *code = 400;
      return JsonError("unknown level \"" + level +
                       "\" (info|warn|error|fatal)");
    }
    SetMinLogSeverity(severity);
    JsonValue out = JsonValue::Object();
    out.Set("status", JsonValue::String("ok"));
    out.Set("level", JsonValue::String(level));
    return ok_json(std::move(out));
  }
  *code = 404;
  return JsonError("no route for " + target);
}

int Server::EvaluateHealth(std::string* body) const {
  // 0 = ok, 1 = degraded (warn crossed), 2 = unhealthy (crit crossed).
  int worst = 0;
  JsonValue checks = JsonValue::Object();
  const auto check = [&](const char* name, double value, double warn,
                         double crit) {
    int level = 0;
    if (crit > 0 && value >= crit) {
      level = 2;
    } else if (warn > 0 && value >= warn) {
      level = 1;
    }
    worst = std::max(worst, level);
    JsonValue c = JsonValue::Object();
    c.Set("value", JsonValue::Number(value));
    c.Set("status", JsonValue::String(level == 0   ? "ok"
                                      : level == 1 ? "degraded"
                                                   : "unhealthy"));
    checks.Set(name, std::move(c));
  };

  const HealthThresholds& h = options_.health;
  check("queue_depth", static_cast<double>(scheduler_->queue_depth()),
        h.queue_depth_warn, h.queue_depth_crit);
  static obs::Histogram* latency = obs::GetHistogram("serve/latency_ms");
  check("latency_p99_ms", latency->Quantile(0.99), h.p99_ms_warn,
        h.p99_ms_crit);
  static obs::Counter* requests = obs::GetCounter("serve/requests");
  static obs::Counter* rejected = obs::GetCounter("serve/rejected");
  const int64_t total = requests->value();
  const double frac =
      total > 0 ? static_cast<double>(rejected->value()) /
                      static_cast<double>(total)
                : 0.0;
  check("reject_frac", frac, h.reject_frac_warn, h.reject_frac_crit);

  JsonValue out = JsonValue::Object();
  out.Set("status", JsonValue::String(worst == 0   ? "ok"
                                      : worst == 1 ? "degraded"
                                                   : "unhealthy"));
  out.Set("draining", JsonValue::Bool(draining_.load()));
  out.Set("checks", std::move(checks));
  *body = out.ToString(/*pretty=*/false);
  // Degraded still answers 200: the instance serves, operators alert on
  // the body. Unhealthy answers 503 so load balancers stop routing to it.
  return worst < 2 ? 200 : 503;
}

JsonValue Server::ResponseToJson(const std::string& client_id,
                                 const Response& r, bool want_text) const {
  JsonValue out = JsonValue::Object();
  if (!client_id.empty()) out.Set("id", JsonValue::String(client_id));
  out.Set("status", JsonValue::String(ResponseStatusName(r.status)));
  if (r.status == ResponseStatus::kOk ||
      r.status == ResponseStatus::kDeadlineExpired) {
    JsonValue tokens = JsonValue::Array();
    for (int t : r.tokens) {
      tokens.Append(JsonValue::Number(static_cast<double>(t)));
    }
    out.Set("tokens", std::move(tokens));
    if (want_text && tokenizer_ != nullptr) {
      out.Set("text", JsonValue::String(tokenizer_->Decode(r.tokens)));
    }
    out.Set("queue_ms", JsonValue::Number(r.queue_ms));
    out.Set("ttft_ms", JsonValue::Number(r.ttft_ms));
    out.Set("decode_ms", JsonValue::Number(r.decode_ms));
    out.Set("total_ms", JsonValue::Number(r.total_ms));
    out.Set("tokens_per_sec", JsonValue::Number(r.tokens_per_sec));
  }
  if (r.status == ResponseStatus::kRejected) {
    out.Set("retry_after_ms", JsonValue::Number(r.retry_after_ms));
  }
  if (!r.error.empty()) out.Set("error", JsonValue::String(r.error));
  return out;
}

std::string Server::HandleLine(const std::string& line) {
  std::string client_id;
  const auto error_line = [&](const std::string& msg) {
    JsonValue out = JsonValue::Object();
    if (!client_id.empty()) out.Set("id", JsonValue::String(client_id));
    out.Set("status", JsonValue::String("error"));
    out.Set("error", JsonValue::String(msg));
    return out.ToString(/*pretty=*/false);
  };

  StatusOr<JsonValue> parsed = JsonValue::Parse(line);
  if (!parsed.ok()) return error_line(parsed.status().message());
  const JsonValue& doc = parsed.value();
  if (!doc.is_object()) return error_line("request must be a JSON object");
  if (const JsonValue* id = doc.Find("id")) {
    client_id =
        id->is_string() ? id->string_value() : id->ToString(/*pretty=*/false);
  }

  if (draining_.load()) {
    JsonValue out = JsonValue::Object();
    if (!client_id.empty()) out.Set("id", JsonValue::String(client_id));
    out.Set("status", JsonValue::String("rejected"));
    out.Set("error", JsonValue::String("draining"));
    out.Set("retry_after_ms", JsonValue::Number(1000));
    return out.ToString(/*pretty=*/false);
  }

  Request req;
  if (const JsonValue* toks = doc.Find("tokens")) {
    if (!toks->is_array()) return error_line("\"tokens\" must be an array");
    for (size_t i = 0; i < toks->size(); ++i) {
      if (!toks->at(i).is_number()) {
        return error_line("\"tokens\" must hold numbers");
      }
      req.tokens.push_back(static_cast<int>(toks->at(i).number_value()));
    }
  } else if (const JsonValue* txt = doc.Find("text")) {
    if (!txt->is_string()) return error_line("\"text\" must be a string");
    if (tokenizer_ == nullptr) {
      return error_line("server has no tokenizer; send \"tokens\"");
    }
    req.tokens = tokenizer_->Encode(txt->string_value());
  } else {
    return error_line("request needs \"text\" or \"tokens\"");
  }
  if (const JsonValue* v = doc.Find("max_len")) {
    req.options.max_len = static_cast<int>(v->number_value(48));
  }
  if (const JsonValue* v = doc.Find("beam")) {
    req.options.beam_size = static_cast<int>(v->number_value(1));
  }
  if (const JsonValue* v = doc.Find("deadline_ms")) {
    req.options.deadline_ms = static_cast<int>(v->number_value(0));
  }
  if (const JsonValue* v = doc.Find("priority")) {
    req.priority = static_cast<int>(v->number_value(0));
  }
  if (const JsonValue* v = doc.Find("weight_dtype")) {
    if (!v->is_string()) return error_line("\"weight_dtype\" must be a string");
    const std::string& dtype = v->string_value();
    if (dtype == "int8") {
      req.options.weight_dtype = WeightDtype::kInt8;
    } else if (dtype != "float32") {
      return error_line("\"weight_dtype\" must be \"float32\" or \"int8\"");
    }
  }
  // Speculative decoding: "draft": k asks for up to k draft tokens per
  // verify round (the server-wide default applies when the field is
  // absent, and "draft": 0 opts out of it); "draft_adaptive": false pins
  // the proposal length at k.
  // Mode conflicts (beam > 1, temperature, no draft model loaded, dtype
  // mismatch) are rejected by the scheduler's admission guard with a clear
  // error rather than silently decoded plain (docs/SPECULATIVE.md).
  req.options.draft_k = options_.default_draft_k;
  if (const JsonValue* v = doc.Find("draft")) {
    if (!v->is_number()) return error_line("\"draft\" must be a number");
    const int k = static_cast<int>(v->number_value(0));
    if (k < 0) return error_line("\"draft\" must be >= 0");
    req.options.draft_k = k;
  }
  if (const JsonValue* v = doc.Find("draft_adaptive")) {
    if (!v->is_bool()) return error_line("\"draft_adaptive\" must be a bool");
    req.options.draft_adaptive = v->bool_value();
  }

  const Response response = scheduler_->SubmitAndWait(std::move(req));
  return ResponseToJson(client_id, response, /*want_text=*/true)
      .ToString(/*pretty=*/false);
}

}  // namespace serve
}  // namespace vist5
