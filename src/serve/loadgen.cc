#include "serve/loadgen.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <fstream>
#include <mutex>
#include <thread>

#include "obs/metrics.h"
#include "util/json.h"
#include "util/rng.h"

namespace vist5 {
namespace serve {
namespace {

double ExactQuantile(std::vector<double> sorted_values, double q) {
  if (sorted_values.empty()) return 0;
  const size_t idx = static_cast<size_t>(
      q * static_cast<double>(sorted_values.size() - 1) + 0.5);
  return sorted_values[std::min(idx, sorted_values.size() - 1)];
}

}  // namespace

StatusOr<std::vector<TraceEntry>> LoadTraceJsonl(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open trace file: " + path);
  }
  std::vector<TraceEntry> trace;
  std::string line;
  int lineno = 0;
  double prev_at_ms = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    const auto bad = [&](const std::string& msg) {
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": " + msg);
    };
    StatusOr<JsonValue> parsed = JsonValue::Parse(line);
    if (!parsed.ok()) return bad(std::string(parsed.status().message()));
    const JsonValue& doc = parsed.value();
    if (!doc.is_object()) return bad("trace entry must be a JSON object");
    TraceEntry entry;
    const JsonValue* toks = doc.Find("tokens");
    if (toks == nullptr || !toks->is_array() || toks->size() == 0) {
      return bad("trace entry needs a non-empty \"tokens\" array");
    }
    for (size_t i = 0; i < toks->size(); ++i) {
      if (!toks->at(i).is_number()) return bad("\"tokens\" must hold numbers");
      entry.tokens.push_back(static_cast<int>(toks->at(i).number_value()));
    }
    entry.at_ms = prev_at_ms;
    if (const JsonValue* v = doc.Find("at_ms")) {
      if (!v->is_number() || v->number_value() < prev_at_ms) {
        return bad("\"at_ms\" must be a number, non-decreasing across lines");
      }
      entry.at_ms = v->number_value();
    }
    prev_at_ms = entry.at_ms;
    if (const JsonValue* v = doc.Find("max_len")) {
      entry.max_len = static_cast<int>(v->number_value(-1));
    }
    if (const JsonValue* v = doc.Find("draft")) {
      entry.draft_k = static_cast<int>(v->number_value(-1));
    }
    trace.push_back(std::move(entry));
  }
  if (trace.empty()) {
    return Status::InvalidArgument("trace file holds no entries: " + path);
  }
  return trace;
}

std::vector<std::vector<int>> SchemaSkewedPrompts(
    const SchemaSkewOptions& options) {
  VIST5_CHECK(options.num_schemas > 0 && options.questions_per_schema > 0);
  VIST5_CHECK(options.vocab > 2);
  Rng rng(options.seed);
  const auto random_run = [&](int len) {
    std::vector<int> tokens(static_cast<size_t>(len));
    // Keep clear of the pad/EOS ids (0 and 1 in every test/bench fixture).
    for (int& t : tokens) t = rng.UniformRange(2, options.vocab - 1);
    return tokens;
  };
  std::vector<std::vector<int>> schemas;
  std::vector<std::vector<std::vector<int>>> questions;
  for (int s = 0; s < options.num_schemas; ++s) {
    schemas.push_back(random_run(options.schema_tokens));
    questions.emplace_back();
    for (int q = 0; q < options.questions_per_schema; ++q) {
      questions.back().push_back(random_run(options.question_tokens));
    }
  }
  std::vector<double> weights(static_cast<size_t>(options.num_schemas));
  for (int s = 0; s < options.num_schemas; ++s) {
    weights[static_cast<size_t>(s)] =
        1.0 / std::pow(static_cast<double>(s + 1), options.zipf_s);
  }
  std::vector<std::vector<int>> prompts;
  prompts.reserve(static_cast<size_t>(options.total));
  for (int i = 0; i < options.total; ++i) {
    const int s = rng.Categorical(weights);
    const std::vector<int>& question =
        questions[static_cast<size_t>(s)][static_cast<size_t>(
            rng.UniformInt(options.questions_per_schema))];
    // Schema first: the shared serialization is the prompt head, so
    // same-schema prompts share a long radix prefix and same-question
    // repeats are exact cache hits.
    std::vector<int> prompt = schemas[static_cast<size_t>(s)];
    prompt.insert(prompt.end(), question.begin(), question.end());
    prompts.push_back(std::move(prompt));
  }
  return prompts;
}

LoadGenReport RunLoadGen(BatchScheduler* scheduler,
                         const std::vector<std::vector<int>>& prompts,
                         const LoadGenOptions& options) {
  const bool replay = !options.trace.empty();
  const bool open_loop = replay || options.arrival_rate > 0;
  VIST5_CHECK(replay || !prompts.empty());
  using Clock = std::chrono::steady_clock;
  obs::Histogram* batch_hist = obs::GetHistogram("serve/batch_size");
  const uint64_t batch_count0 = batch_hist->count();
  const double batch_sum0 = batch_hist->sum();
  const PrefixCache* cache = scheduler->prefix_cache();
  const PrefixCacheStats cache0 =
      cache != nullptr ? cache->stats() : PrefixCacheStats{};

  struct Shared {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<double> latencies_ms;
    std::vector<double> ttfts_ms;
    std::vector<double> observed_ttfts_ms;
    int slo_violations = 0;
    int issued = 0;
    int done = 0;
    int completed = 0;
    int expired = 0;
    int64_t tokens = 0;
    int64_t prefill_tokens = 0;
  };
  Shared shared;
  const int total =
      replay ? static_cast<int>(options.trace.size()) : options.total_requests;

  // Records one completion; returns true when it was the last. Shared by
  // the closed and open loops so both report identically.
  const auto record = [&shared, &options, total](const Response& r,
                                                 Clock::time_point start) {
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    bool all_done = false;
    {
      std::lock_guard<std::mutex> lock(shared.mu);
      shared.latencies_ms.push_back(ms);
      if (r.ttft_ms > 0) shared.ttfts_ms.push_back(r.ttft_ms);
      if (options.slo_ms > 0 && ms > options.slo_ms) {
        ++shared.slo_violations;
      }
      if (r.status == ResponseStatus::kOk) {
        ++shared.completed;
        shared.tokens += static_cast<int64_t>(r.tokens.size());
      } else if (r.status == ResponseStatus::kDeadlineExpired) {
        ++shared.expired;
      }
      all_done = ++shared.done >= total;
      // Notify while still holding the lock: `shared` lives on the
      // waiter's stack, and the waiter may destroy it the moment it can
      // observe done == total — which it cannot do before we unlock.
      // Notifying after unlocking would race the cv's own destruction.
      if (all_done) shared.cv.notify_all();
    }
    return all_done;
  };

  // Observed TTFT: stamp the first streamed token's arrival against the
  // request's issue time. Runs on the scheduler's decode thread, strictly
  // before that request's completion fires, so `shared` (on this stack
  // until every completion is recorded) is safe to touch.
  const auto attach_stream = [&shared, &options](Request* req,
                                                 Clock::time_point start) {
    if (!options.stream) return;
    req->on_token = [&shared, start](int /*token*/, size_t seq) {
      if (seq != 0) return;
      const double ms =
          std::chrono::duration<double, std::milli>(Clock::now() - start)
              .count();
      std::lock_guard<std::mutex> lock(shared.mu);
      shared.observed_ttfts_ms.push_back(ms);
    };
  };

  // Closed loop: each completion immediately refills the slot it frees, so
  // the number in flight stays at `concurrency` until the tail.
  std::function<void()> issue_one = [&]() {
    int index;
    Clock::time_point start;
    {
      std::lock_guard<std::mutex> lock(shared.mu);
      if (shared.issued >= total) return;
      index = shared.issued++;
      start = Clock::now();
    }
    Request req;
    req.tokens = prompts[static_cast<size_t>(index) % prompts.size()];
    req.options = options.gen;
    {
      std::lock_guard<std::mutex> lock(shared.mu);
      shared.prefill_tokens += static_cast<int64_t>(req.tokens.size());
    }
    attach_stream(&req, start);
    scheduler->Submit(std::move(req),
                      [&record, &issue_one, start](Response r) {
                        if (!record(r, start)) issue_one();
                      });
  };

  const Clock::time_point t0 = Clock::now();
  if (open_loop) {
    // Open loop: arrivals follow the schedule — the trace's timestamps, or
    // exponential inter-arrival gaps (a Poisson process) at arrival_rate —
    // and never wait for completions. Overload therefore surfaces as
    // queueing latency and SLO violations, not as a throttled client.
    Rng arrivals(options.arrival_seed);
    double next_ms = 0;
    for (int i = 0; i < total; ++i) {
      double at_ms;
      if (replay) {
        at_ms = options.trace[static_cast<size_t>(i)].at_ms;
      } else {
        next_ms += -std::log(1.0 - arrivals.UniformDouble()) * 1000.0 /
                   options.arrival_rate;
        at_ms = next_ms;
      }
      std::this_thread::sleep_until(
          t0 + std::chrono::duration_cast<Clock::duration>(
                   std::chrono::duration<double, std::milli>(at_ms)));
      Request req;
      req.options = options.gen;
      if (replay) {
        const TraceEntry& entry = options.trace[static_cast<size_t>(i)];
        req.tokens = entry.tokens;
        if (entry.max_len >= 0) req.options.max_len = entry.max_len;
        if (entry.draft_k >= 0) req.options.draft_k = entry.draft_k;
      } else {
        req.tokens = prompts[static_cast<size_t>(i) % prompts.size()];
      }
      const Clock::time_point start = Clock::now();
      {
        std::lock_guard<std::mutex> lock(shared.mu);
        ++shared.issued;
        shared.prefill_tokens += static_cast<int64_t>(req.tokens.size());
      }
      attach_stream(&req, start);
      scheduler->Submit(std::move(req), [&record, start](Response r) {
        record(r, start);
      });
    }
  } else {
    const int initial = std::min(options.concurrency, total);
    for (int i = 0; i < initial; ++i) issue_one();
  }
  {
    std::unique_lock<std::mutex> lock(shared.mu);
    shared.cv.wait(lock, [&] { return shared.done >= total; });
  }
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - t0).count();

  LoadGenReport report;
  report.completed = shared.completed;
  report.expired = shared.expired;
  report.tokens = shared.tokens;
  report.wall_s = wall_s;
  report.tok_per_sec =
      wall_s > 0 ? static_cast<double>(shared.tokens) / wall_s : 0;
  std::sort(shared.latencies_ms.begin(), shared.latencies_ms.end());
  report.p50_ms = ExactQuantile(shared.latencies_ms, 0.50);
  report.p99_ms = ExactQuantile(shared.latencies_ms, 0.99);
  std::sort(shared.ttfts_ms.begin(), shared.ttfts_ms.end());
  report.ttft_p50_ms = ExactQuantile(shared.ttfts_ms, 0.50);
  report.ttft_p99_ms = ExactQuantile(shared.ttfts_ms, 0.99);
  std::sort(shared.observed_ttfts_ms.begin(), shared.observed_ttfts_ms.end());
  report.observed_ttft_p50_ms = ExactQuantile(shared.observed_ttfts_ms, 0.50);
  report.observed_ttft_p99_ms = ExactQuantile(shared.observed_ttfts_ms, 0.99);
  if (options.slo_ms > 0 && !shared.latencies_ms.empty()) {
    report.slo_violation_frac =
        static_cast<double>(shared.slo_violations) /
        static_cast<double>(shared.latencies_ms.size());
  }
  const uint64_t steps = batch_hist->count() - batch_count0;
  if (steps > 0) {
    report.mean_batch =
        (batch_hist->sum() - batch_sum0) / static_cast<double>(steps);
  }
  report.prefill_tokens = shared.prefill_tokens;
  if (cache != nullptr) {
    const PrefixCacheStats cache1 = cache->stats();
    report.prefix_hits = static_cast<int64_t>(cache1.hits - cache0.hits);
    report.prefix_misses =
        static_cast<int64_t>(cache1.misses - cache0.misses);
    const int64_t lookups = report.prefix_hits + report.prefix_misses;
    if (lookups > 0) {
      report.prefix_hit_rate =
          static_cast<double>(report.prefix_hits) /
          static_cast<double>(lookups);
    }
    report.prefill_tokens_saved =
        static_cast<int64_t>(cache1.reuse_tokens - cache0.reuse_tokens);
  }
  return report;
}

}  // namespace serve
}  // namespace vist5
