#include "serve/loadgen.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>

#include "obs/metrics.h"

namespace vist5 {
namespace serve {
namespace {

double ExactQuantile(std::vector<double> sorted_values, double q) {
  if (sorted_values.empty()) return 0;
  const size_t idx = static_cast<size_t>(
      q * static_cast<double>(sorted_values.size() - 1) + 0.5);
  return sorted_values[std::min(idx, sorted_values.size() - 1)];
}

}  // namespace

LoadGenReport RunLoadGen(BatchScheduler* scheduler,
                         const std::vector<std::vector<int>>& prompts,
                         const LoadGenOptions& options) {
  VIST5_CHECK(!prompts.empty());
  using Clock = std::chrono::steady_clock;
  obs::Histogram* batch_hist = obs::GetHistogram("serve/batch_size");
  const uint64_t batch_count0 = batch_hist->count();
  const double batch_sum0 = batch_hist->sum();

  struct Shared {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<double> latencies_ms;
    std::vector<double> ttfts_ms;
    int slo_violations = 0;
    int issued = 0;
    int done = 0;
    int completed = 0;
    int expired = 0;
    int64_t tokens = 0;
  };
  Shared shared;
  const int total = options.total_requests;

  // Closed loop: each completion immediately refills the slot it frees, so
  // the number in flight stays at `concurrency` until the tail.
  std::function<void()> issue_one = [&]() {
    int index;
    Clock::time_point start;
    {
      std::lock_guard<std::mutex> lock(shared.mu);
      if (shared.issued >= total) return;
      index = shared.issued++;
      start = Clock::now();
    }
    Request req;
    req.tokens = prompts[static_cast<size_t>(index) % prompts.size()];
    req.options = options.gen;
    scheduler->Submit(std::move(req), [&shared, &issue_one, &options, start,
                                      total](Response r) {
      const double ms = std::chrono::duration<double, std::milli>(
                            Clock::now() - start)
                            .count();
      bool all_done = false;
      {
        std::lock_guard<std::mutex> lock(shared.mu);
        shared.latencies_ms.push_back(ms);
        if (r.ttft_ms > 0) shared.ttfts_ms.push_back(r.ttft_ms);
        if (options.slo_ms > 0 && ms > options.slo_ms) {
          ++shared.slo_violations;
        }
        if (r.status == ResponseStatus::kOk) {
          ++shared.completed;
          shared.tokens += static_cast<int64_t>(r.tokens.size());
        } else if (r.status == ResponseStatus::kDeadlineExpired) {
          ++shared.expired;
        }
        all_done = ++shared.done >= total;
        // Notify while still holding the lock: `shared` lives on the
        // waiter's stack, and the waiter may destroy it the moment it can
        // observe done == total — which it cannot do before we unlock.
        // Notifying after unlocking would race the cv's own destruction.
        if (all_done) shared.cv.notify_all();
      }
      if (!all_done) issue_one();
    });
  };

  const Clock::time_point t0 = Clock::now();
  const int initial = std::min(options.concurrency, total);
  for (int i = 0; i < initial; ++i) issue_one();
  {
    std::unique_lock<std::mutex> lock(shared.mu);
    shared.cv.wait(lock, [&] { return shared.done >= total; });
  }
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - t0).count();

  LoadGenReport report;
  report.completed = shared.completed;
  report.expired = shared.expired;
  report.tokens = shared.tokens;
  report.wall_s = wall_s;
  report.tok_per_sec =
      wall_s > 0 ? static_cast<double>(shared.tokens) / wall_s : 0;
  std::sort(shared.latencies_ms.begin(), shared.latencies_ms.end());
  report.p50_ms = ExactQuantile(shared.latencies_ms, 0.50);
  report.p99_ms = ExactQuantile(shared.latencies_ms, 0.99);
  std::sort(shared.ttfts_ms.begin(), shared.ttfts_ms.end());
  report.ttft_p50_ms = ExactQuantile(shared.ttfts_ms, 0.50);
  report.ttft_p99_ms = ExactQuantile(shared.ttfts_ms, 0.99);
  if (options.slo_ms > 0 && !shared.latencies_ms.empty()) {
    report.slo_violation_frac =
        static_cast<double>(shared.slo_violations) /
        static_cast<double>(shared.latencies_ms.size());
  }
  const uint64_t steps = batch_hist->count() - batch_count0;
  if (steps > 0) {
    report.mean_batch =
        (batch_hist->sum() - batch_sum0) / static_cast<double>(steps);
  }
  return report;
}

}  // namespace serve
}  // namespace vist5
