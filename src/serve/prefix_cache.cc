#include "serve/prefix_cache.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"

namespace vist5 {
namespace serve {
namespace {

/// Longest common prefix of `tokens[offset..]` and `edge`.
int CommonLen(const std::vector<int>& tokens, size_t offset,
              const std::vector<int>& edge) {
  const size_t limit = std::min(edge.size(), tokens.size() - offset);
  size_t n = 0;
  while (n < limit && tokens[offset + n] == edge[n]) ++n;
  return static_cast<int>(n);
}

struct Metrics {
  obs::Counter* hits = obs::GetCounter("serve/prefix_cache/hits");
  obs::Counter* misses = obs::GetCounter("serve/prefix_cache/misses");
  obs::Counter* partial = obs::GetCounter("serve/prefix_cache/partial_hits");
  obs::Counter* insertions =
      obs::GetCounter("serve/prefix_cache/insertions");
  obs::Counter* evictions = obs::GetCounter("serve/prefix_cache/evictions");
  obs::Counter* reuse_tokens =
      obs::GetCounter("serve/prefix_cache/reuse_tokens");
  obs::Gauge* bytes = obs::GetGauge("serve/prefix_cache/bytes");
  obs::Gauge* entries = obs::GetGauge("serve/prefix_cache/entries");
};

Metrics& GlobalMetrics() {
  static Metrics m;
  return m;
}

}  // namespace

/// Compressed radix node: `edge` is the token run between the parent and
/// this node. A node with a block is a cache entry; interior nodes without
/// blocks exist only where two entries diverge (the trie re-merges
/// pass-through chains on eviction, so its size stays proportional to the
/// number of entries).
struct PrefixCache::Node {
  std::vector<int> edge;
  Node* parent = nullptr;
  std::map<int, std::unique_ptr<Node>> children;  ///< keyed by edge front
  std::shared_ptr<const model::EncodedPrefix> block;
  int pins = 0;
  uint64_t lru = 0;
  size_t bytes = 0;
};

PrefixCache::PrefixCache(const PrefixCacheOptions& options)
    : options_(options) {}

PrefixCache::~PrefixCache() = default;

PrefixCache::Walk PrefixCache::WalkLocked(const std::vector<int>& tokens,
                                          WeightDtype dtype) const {
  Walk walk;
  const auto root_it = roots_.find(static_cast<int>(dtype));
  if (root_it == roots_.end()) return walk;
  Node* node = root_it->second.get();
  walk.node = node;
  size_t offset = 0;
  while (offset < tokens.size()) {
    const auto child_it = node->children.find(tokens[offset]);
    if (child_it == node->children.end()) return walk;
    Node* child = child_it->second.get();
    const int common = CommonLen(tokens, offset, child->edge);
    walk.matched += common;
    if (static_cast<size_t>(common) < child->edge.size()) {
      // Diverged (or ran out of input) mid-edge: the deepest fully-entered
      // node stays `node`.
      return walk;
    }
    offset += child->edge.size();
    node = child;
    walk.node = node;
  }
  walk.exact = true;
  return walk;
}

PrefixCache::Node* PrefixCache::DescendLocked(const std::vector<int>& tokens,
                                              WeightDtype dtype) {
  std::unique_ptr<Node>& root = roots_[static_cast<int>(dtype)];
  if (root == nullptr) root = std::make_unique<Node>();
  Node* node = root.get();
  size_t offset = 0;
  while (offset < tokens.size()) {
    const auto child_it = node->children.find(tokens[offset]);
    if (child_it == node->children.end()) {
      auto child = std::make_unique<Node>();
      child->edge.assign(tokens.begin() + static_cast<long>(offset),
                         tokens.end());
      child->parent = node;
      Node* raw = child.get();
      node->children.emplace(tokens[offset], std::move(child));
      return raw;
    }
    Node* child = child_it->second.get();
    const size_t common =
        static_cast<size_t>(CommonLen(tokens, offset, child->edge));
    if (common < child->edge.size()) {
      // Split the edge at the divergence point: `child` keeps its tail
      // under a new interior node holding the shared head.
      auto mid = std::make_unique<Node>();
      mid->edge.assign(child->edge.begin(),
                       child->edge.begin() + static_cast<long>(common));
      mid->parent = node;
      std::unique_ptr<Node> tail = std::move(child_it->second);
      tail->edge.erase(tail->edge.begin(),
                       tail->edge.begin() + static_cast<long>(common));
      tail->parent = mid.get();
      mid->children.emplace(tail->edge.front(), std::move(tail));
      Node* mid_raw = mid.get();
      child_it->second = std::move(mid);
      node = mid_raw;
      offset += common;
      continue;  // re-enter: descend (or create) below the split point
    }
    offset += child->edge.size();
    node = child;
  }
  return node;
}

void PrefixCache::RemoveEntryLocked(Node* node) {
  bytes_ -= node->bytes;
  --entries_;
  node->block.reset();
  node->bytes = 0;
  // Prune now-useless leaves upward, then re-merge a surviving interior
  // node that is left with a single child and no entry of its own.
  while (node != nullptr && node->parent != nullptr &&
         node->block == nullptr && node->children.empty() &&
         node->pins == 0) {
    Node* parent = node->parent;
    parent->children.erase(node->edge.front());
    node = parent;
  }
  if (node != nullptr && node->parent != nullptr &&
      node->block == nullptr && node->children.size() == 1 &&
      node->pins == 0) {
    std::unique_ptr<Node> child = std::move(node->children.begin()->second);
    node->children.clear();
    node->edge.insert(node->edge.end(), child->edge.begin(),
                      child->edge.end());
    node->block = std::move(child->block);
    node->pins = child->pins;
    node->lru = child->lru;
    node->bytes = child->bytes;
    node->children = std::move(child->children);
    for (auto& grandchild : node->children) {
      grandchild.second->parent = node;
    }
  }
}

void PrefixCache::TrimLocked() {
  while (bytes_ > options_.max_bytes) {
    Node* victim = nullptr;
    // Linear scan for the least-recently-used unpinned entry. Entry counts
    // are small (each holds a whole encoder block, typically megabytes),
    // so a scan beats maintaining an intrusive LRU list under eviction,
    // splitting, and re-merging.
    std::vector<Node*> stack;
    for (auto& root : roots_) stack.push_back(root.second.get());
    while (!stack.empty()) {
      Node* node = stack.back();
      stack.pop_back();
      if (node->block != nullptr && node->pins == 0 &&
          (victim == nullptr || node->lru < victim->lru)) {
        victim = node;
      }
      for (auto& child : node->children) stack.push_back(child.second.get());
    }
    if (victim == nullptr) return;  // everything resident is pinned
    RemoveEntryLocked(victim);
    ++stats_.evictions;
    GlobalMetrics().evictions->Add();
  }
}

void PrefixCache::UpdateGaugesLocked() {
  stats_.bytes = bytes_;
  stats_.entries = entries_;
  GlobalMetrics().bytes->Set(static_cast<double>(bytes_));
  GlobalMetrics().entries->Set(static_cast<double>(entries_));
}

PrefixCache::Handle PrefixCache::Acquire(const std::vector<int>& tokens,
                                         WeightDtype dtype) {
  Handle handle;
  if (tokens.empty()) return handle;
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled()) {
    ++stats_.misses;
    GlobalMetrics().misses->Add();
    return handle;
  }
  const Walk walk = WalkLocked(tokens, dtype);
  handle.matched_tokens = walk.matched;
  if (walk.exact && walk.node->block != nullptr) {
    handle.block = walk.node->block;
    handle.hit = true;
    ++walk.node->pins;
    walk.node->lru = ++tick_;
    ++stats_.hits;
    stats_.reuse_tokens += tokens.size();
    GlobalMetrics().hits->Add();
    GlobalMetrics().reuse_tokens->Add(static_cast<int64_t>(tokens.size()));
  } else {
    ++stats_.misses;
    GlobalMetrics().misses->Add();
    if (walk.matched > 0) {
      ++stats_.partial_hits;
      GlobalMetrics().partial->Add();
    }
  }
  return handle;
}

PrefixCache::Handle PrefixCache::Insert(
    std::shared_ptr<const model::EncodedPrefix> block) {
  Handle handle;
  if (block == nullptr || block->tokens.empty()) return handle;
  // Even when nothing is retained, the caller decodes from the block it
  // just computed; hand it back so the call site is branch-free.
  handle.block = block;
  handle.matched_tokens = static_cast<int>(block->tokens.size());
  if (!enabled()) return handle;
  std::lock_guard<std::mutex> lock(mu_);
  Node* node = DescendLocked(block->tokens, block->dtype);
  if (node->block == nullptr) {
    node->block = std::move(block);
    node->bytes = node->block->ByteSize();
    bytes_ += node->bytes;
    ++entries_;
    ++stats_.insertions;
    GlobalMetrics().insertions->Add();
  }
  // An entry may already exist (another donor won the race); the resident
  // block wins so every same-key consumer aliases one storage.
  handle.block = node->block;
  ++node->pins;
  node->lru = ++tick_;
  TrimLocked();  // never touches this entry: it is pinned
  UpdateGaugesLocked();
  return handle;
}

void PrefixCache::Release(const Handle& handle) {
  if (handle.block == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  const Walk walk = WalkLocked(handle.block->tokens, handle.block->dtype);
  // Identity check, not just key equality: after Clear (or an evict +
  // reinsert of the same sequence) the resident block is a different
  // object and this handle no longer holds a pin on it.
  if (!walk.exact || walk.node->block != handle.block) return;
  if (walk.node->pins > 0) --walk.node->pins;
  walk.node->lru = ++tick_;
  TrimLocked();
  UpdateGaugesLocked();
}

int PrefixCache::MatchLen(const std::vector<int>& tokens,
                          WeightDtype dtype) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled() || tokens.empty()) return 0;
  return WalkLocked(tokens, dtype).matched;
}

void PrefixCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  roots_.clear();
  bytes_ = 0;
  entries_ = 0;
  UpdateGaugesLocked();
}

PrefixCacheStats PrefixCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace serve
}  // namespace vist5
