#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace vist5 {
namespace serve {

Status Client::Connect(const std::string& host, int port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad host: " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status s =
        Status::Unavailable(std::string("connect: ") + std::strerror(errno));
    Close();
    return s;
  }
  return Status::OK();
}

StatusOr<JsonValue> Client::Call(const JsonValue& request) {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  std::string line = request.ToString(/*pretty=*/false) + "\n";
  size_t off = 0;
  while (off < line.size()) {
    const ssize_t n =
        ::send(fd_, line.data() + off, line.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      return Status::IoError(std::string("send: ") + std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  char chunk[4096];
  size_t nl;
  while ((nl = buf_.find('\n')) == std::string::npos) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      return Status::IoError("connection closed before the response line");
    }
    buf_.append(chunk, static_cast<size_t>(n));
  }
  const std::string response = buf_.substr(0, nl);
  buf_.erase(0, nl + 1);
  return JsonValue::Parse(response);
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buf_.clear();
}

Response InProcessClient::Call(const std::string& input_text,
                               const model::GenerationOptions& options,
                               int priority) {
  if (tokenizer_ == nullptr) {
    Response r;
    r.status = ResponseStatus::kError;
    r.error = "no tokenizer; pass tokens instead of text";
    return r;
  }
  return Call(tokenizer_->Encode(input_text), options, priority);
}

Response InProcessClient::Call(std::vector<int> tokens,
                               const model::GenerationOptions& options,
                               int priority) {
  Request req;
  req.tokens = std::move(tokens);
  req.options = options;
  req.priority = priority;
  return scheduler_->SubmitAndWait(std::move(req));
}

std::string InProcessClient::DecodeTokens(const Response& response) const {
  return tokenizer_ != nullptr ? tokenizer_->Decode(response.tokens)
                               : std::string();
}

}  // namespace serve
}  // namespace vist5
