#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace vist5 {
namespace serve {

Status Client::Connect(const std::string& host, int port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad host: " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status s =
        Status::Unavailable(std::string("connect: ") + std::strerror(errno));
    Close();
    return s;
  }
  return Status::OK();
}

StatusOr<JsonValue> Client::Call(const JsonValue& request) {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  std::string line = request.ToString(/*pretty=*/false) + "\n";
  size_t off = 0;
  while (off < line.size()) {
    const ssize_t n =
        ::send(fd_, line.data() + off, line.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      return Status::IoError(std::string("send: ") + std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  char chunk[4096];
  size_t nl;
  while ((nl = buf_.find('\n')) == std::string::npos) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      return Status::IoError("connection closed before the response line");
    }
    buf_.append(chunk, static_cast<size_t>(n));
  }
  const std::string response = buf_.substr(0, nl);
  buf_.erase(0, nl + 1);
  return JsonValue::Parse(response);
}

StatusOr<JsonValue> Client::CallStreaming(
    const JsonValue& request,
    const std::function<void(int token, int seq)>& on_token) {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  JsonValue streaming = request;
  streaming.Set("stream", JsonValue::Bool(true));
  Status sent = SendRaw(streaming.ToString(/*pretty=*/false) + "\n");
  if (!sent.ok()) return sent;
  char chunk[4096];
  for (;;) {
    size_t nl;
    while ((nl = buf_.find('\n')) == std::string::npos) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        return Status::IoError("connection closed before the response line");
      }
      buf_.append(chunk, static_cast<size_t>(n));
    }
    const std::string line = buf_.substr(0, nl);
    buf_.erase(0, nl + 1);
    StatusOr<JsonValue> parsed = JsonValue::Parse(line);
    if (!parsed.ok()) return parsed;
    const JsonValue& doc = parsed.value();
    // Stream lines carry "token"; anything with "status" is the final
    // response (ok, error, rejected, ...) that ends the exchange.
    if (doc.is_object() && doc.Find("status") == nullptr) {
      if (const JsonValue* token = doc.Find("token")) {
        const JsonValue* seq = doc.Find("seq");
        if (on_token) {
          on_token(static_cast<int>(token->number_value()),
                   seq != nullptr ? static_cast<int>(seq->number_value())
                                  : -1);
        }
        continue;
      }
    }
    return parsed;
  }
}

Status Client::SendRaw(const std::string& data) {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      return Status::IoError(std::string("send: ") + std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Client::RecvToEof(std::string* out) {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      return Status::IoError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) return Status::OK();
    out->append(chunk, static_cast<size_t>(n));
  }
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buf_.clear();
}

StatusOr<HttpResponse> HttpCall(const std::string& host, int port,
                                const std::string& method,
                                const std::string& target,
                                const std::string& body) {
  Client conn;
  Status status = conn.Connect(host, port);
  if (!status.ok()) return status;
  // Client exposes no raw-fd API on purpose; reuse only its socket setup.
  // The request is a minimal HTTP/1.1 exchange with Connection: close, so
  // "read to EOF" delimits the response without chunked-transfer support.
  std::string request = method + " " + target +
                        " HTTP/1.1\r\nHost: " + host +
                        "\r\nConnection: close\r\n";
  if (!body.empty()) {
    request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  request += "\r\n" + body;
  Status sent = conn.SendRaw(request);
  if (!sent.ok()) return sent;
  std::string raw;
  Status received = conn.RecvToEof(&raw);
  if (!received.ok()) return received;

  const size_t line_end = raw.find("\r\n");
  if (raw.compare(0, 5, "HTTP/") != 0 || line_end == std::string::npos) {
    return Status::IoError("malformed HTTP response");
  }
  const size_t sp = raw.find(' ');
  if (sp == std::string::npos || sp > line_end) {
    return Status::IoError("malformed HTTP status line");
  }
  // RFC 7230: the status code is exactly three digits after the first
  // space. Parse it by hand instead of atoi, which would silently turn a
  // truncated or garbage field ("HTTP/1.1 \r\n", "HTTP/1.1 abc") into
  // code 0 and let the caller treat a broken response as a real status.
  if (sp + 3 >= line_end) {
    return Status::IoError("HTTP status line has no status code");
  }
  int code = 0;
  for (size_t i = sp + 1; i < sp + 4; ++i) {
    const char c = raw[i];
    if (c < '0' || c > '9') {
      return Status::IoError("HTTP status code is not numeric");
    }
    code = code * 10 + (c - '0');
  }
  if (sp + 4 < line_end && raw[sp + 4] != ' ') {
    return Status::IoError("HTTP status code is not three digits");
  }
  HttpResponse response;
  response.code = code;
  const size_t header_end = raw.find("\r\n\r\n");
  if (header_end != std::string::npos) {
    response.body = raw.substr(header_end + 4);
  }
  return response;
}

Response InProcessClient::Call(const std::string& input_text,
                               const model::GenerationOptions& options,
                               int priority) {
  if (tokenizer_ == nullptr) {
    Response r;
    r.status = ResponseStatus::kError;
    r.error = "no tokenizer; pass tokens instead of text";
    return r;
  }
  return Call(tokenizer_->Encode(input_text), options, priority);
}

Response InProcessClient::Call(std::vector<int> tokens,
                               const model::GenerationOptions& options,
                               int priority) {
  Request req;
  req.tokens = std::move(tokens);
  req.options = options;
  req.priority = priority;
  return scheduler_->SubmitAndWait(std::move(req));
}

std::string InProcessClient::DecodeTokens(const Response& response) const {
  return tokenizer_ != nullptr ? tokenizer_->Decode(response.tokens)
                               : std::string();
}

}  // namespace serve
}  // namespace vist5
