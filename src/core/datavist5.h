#ifndef VIST5_CORE_DATAVIST5_H_
#define VIST5_CORE_DATAVIST5_H_

#include <memory>
#include <string>
#include <vector>

#include "core/pretrain.h"
#include "core/task_format.h"
#include "model/trainer.h"
#include "model/transformer_model.h"
#include "text/tokenizer.h"

namespace vist5 {
namespace core {

/// Tokenizes task examples into training pairs. `weight` applies uniformly.
std::vector<model::SeqPair> TokenizeTaskExamples(
    Task task, const std::vector<TaskExample>& examples,
    const text::Tokenizer& tokenizer, double weight = 1.0);

/// Per-task sampling weights for temperature up-sampling (Sec. III-F):
/// task probability proportional to N_task^(1/T), implemented as a
/// per-example weight of N_task^(1/T - 1). T = 2 follows the paper;
/// T = 1 disables up-sampling (the "w/o up-sampling" ablation).
double TemperatureWeight(size_t task_size, double temperature);

/// Multi-task fine-tuning corpus: all four tasks mixed with temperature
/// up-sampling.
std::vector<model::SeqPair> BuildMftPairs(const CorpusBundle& bundle,
                                          const text::Tokenizer& tokenizer,
                                          double temperature = 2.0);

/// The end-to-end DataVisT5 pipeline of Fig. 2: tokenizer + T5 backbone +
/// schema filtration + DV-knowledge encoding + task formatting, with
/// hybrid-objective pre-training and multi-task fine-tuning.
class DataVisT5 {
 public:
  struct Options {
    /// T5Small stands in for the 220M checkpoints, T5Base for 770M.
    enum class Size { kSmall, kBase };
    Size size = Size::kSmall;
    uint64_t seed = 3407;
    int max_src_len = 112;
    int max_tgt_len = 56;
  };

  DataVisT5(text::Tokenizer tokenizer, const Options& options);

  /// Hybrid-objective pre-training (Sec. III-E) over the cross-modal corpus.
  model::TrainStats Pretrain(const CorpusBundle& bundle,
                             const PretrainOptions& pretrain_options,
                             const model::TrainOptions& train_options);

  /// Multi-task fine-tuning with temperature mixing (Sec. III-F).
  model::TrainStats FinetuneMultiTask(const CorpusBundle& bundle,
                                      const model::TrainOptions& train_options,
                                      double temperature = 2.0);

  /// Single-task fine-tuning (the +SFT baselines).
  model::TrainStats FinetuneSingleTask(Task task, const CorpusBundle& bundle,
                                       const model::TrainOptions& train_options);

  // --- Task inference (Fig. 1) ------------------------------------------

  /// NL question + database -> standardized DV query.
  std::string TextToVis(const std::string& question,
                        const db::Database& database,
                        const model::GenerationOptions& gen = {}) const;

  /// DV query + database -> NL description.
  std::string VisToText(const std::string& query, const db::Database& database,
                        const model::GenerationOptions& gen = {}) const;

  /// Free-form QA over a DV query, its database, and chart data.
  std::string AnswerQuestion(const std::string& question,
                             const std::string& query,
                             const db::Database& database,
                             const std::string& table_enc,
                             const model::GenerationOptions& gen = {}) const;

  /// Linearized table -> NL description.
  std::string TableToText(const std::string& table_enc,
                          const model::GenerationOptions& gen = {}) const;

  /// Generic: run a task-formatted source through the model.
  std::string Run(const std::string& source,
                  const model::GenerationOptions& gen = {}) const;

  model::TransformerSeq2Seq& model() { return *model_; }
  const model::TransformerSeq2Seq& model() const { return *model_; }
  const text::Tokenizer& tokenizer() const { return tokenizer_; }
  const Options& options() const { return options_; }

 private:
  text::Tokenizer tokenizer_;
  Options options_;
  std::unique_ptr<model::TransformerSeq2Seq> model_;
};

}  // namespace core
}  // namespace vist5

#endif  // VIST5_CORE_DATAVIST5_H_
