#ifndef VIST5_CORE_TASK_FORMAT_H_
#define VIST5_CORE_TASK_FORMAT_H_

#include <string>
#include <vector>

#include "data/corpus.h"
#include "data/fevisqa_gen.h"
#include "data/nvbench_gen.h"
#include "data/tabletext_gen.h"
#include "db/table.h"

namespace vist5 {
namespace core {

/// The four DV tasks of the Jointly Understanding Text and Data
/// Visualization benchmark (Sec. V).
enum class Task { kTextToVis, kVisToText, kFeVisQa, kTableToText };

const char* TaskName(Task task);

/// All generated corpora plus their backing databases.
struct CorpusBundle {
  const db::Catalog* catalog = nullptr;
  std::vector<data::NvBenchExample> nvbench;
  std::vector<data::FeVisQaExample> fevisqa;
  std::vector<data::TableTextExample> tabletext;
};

/// One task-formatted example: source/target surface strings plus the
/// database it came from (empty for table-to-text).
struct TaskExample {
  std::string source;
  std::string target;
  std::string database;
};

/// Task-specific source construction with the Sec. III-E special tokens:
///   text-to-vis : "<nl> q <schema> s"              -> "<vql> query"
///   vis-to-text : "<vql> query <schema> s"         -> "<description> d"
///   FeVisQA     : "<question> q <vql> v <schema> s <table> t" -> "<answer> a"
///   table-to-text: "<table> t"                     -> "<description> d"
std::string TextToVisSource(const std::string& question,
                            const std::string& schema_enc);
std::string VisToTextSource(const std::string& query,
                            const std::string& schema_enc);
std::string FeVisQaSource(const std::string& question, const std::string& query,
                          const std::string& schema_enc,
                          const std::string& table_enc);
std::string TableToTextSource(const std::string& table_enc);

std::string TaskTarget(Task task, const std::string& text);

/// Removes a leading task token ("<vql>", "<answer>", ...) from decoded
/// model output.
std::string StripTaskToken(const std::string& decoded);

/// Schema encoding used for text-to-vis inputs: n-gram filtration of the
/// database schema against the NL question (Sec. III-B).
std::string SchemaForQuestion(const std::string& question,
                              const db::Database& database);

/// Schema encoding used for vis-to-text / FeVisQA inputs: the tables the DV
/// query actually references (falls back to filtration by query text).
std::string SchemaForQuery(const std::string& query,
                           const db::Database& database);

/// Materializes the task-formatted examples of one split.
std::vector<TaskExample> BuildTaskExamples(Task task,
                                           const CorpusBundle& bundle,
                                           data::Split split);

}  // namespace core
}  // namespace vist5

#endif  // VIST5_CORE_TASK_FORMAT_H_
