#include "core/pretrain.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace vist5 {
namespace core {

std::vector<std::pair<std::string, std::string>> BuildBdcTextPairs(
    const CorpusBundle& bundle) {
  std::vector<std::pair<std::string, std::string>> pairs;
  for (Task task : {Task::kTextToVis, Task::kVisToText, Task::kFeVisQa,
                    Task::kTableToText}) {
    for (const TaskExample& ex :
         BuildTaskExamples(task, bundle, data::Split::kTrain)) {
      pairs.emplace_back(ex.source, TaskTarget(task, ex.target));
    }
  }
  return pairs;
}

std::vector<std::string> BuildMlmTexts(const CorpusBundle& bundle) {
  std::vector<std::string> texts;
  for (const auto& ex : bundle.nvbench) {
    if (ex.split != data::Split::kTrain) continue;
    texts.push_back(ex.question);
    texts.push_back(ex.query);
    if (bundle.catalog != nullptr) {
      const db::Database* database = bundle.catalog->Find(ex.database);
      if (database != nullptr) {
        texts.push_back(SchemaForQuestion(ex.question, *database));
      }
    }
  }
  for (const auto& ex : bundle.fevisqa) {
    if (ex.split != data::Split::kTrain) continue;
    texts.push_back(ex.question + " " + ex.answer);
  }
  for (const auto& ex : bundle.tabletext) {
    if (ex.split != data::Split::kTrain) continue;
    texts.push_back(ex.table_enc);
    texts.push_back(ex.description);
  }
  return texts;
}

std::vector<std::string> CollectTokenizerCorpus(const CorpusBundle& bundle) {
  std::vector<std::string> texts;
  for (Task task : {Task::kTextToVis, Task::kVisToText, Task::kFeVisQa,
                    Task::kTableToText}) {
    for (const TaskExample& ex :
         BuildTaskExamples(task, bundle, data::Split::kTrain)) {
      texts.push_back(ex.source);
      texts.push_back(ex.target);
    }
  }
  for (const auto& ex : bundle.nvbench) {
    if (ex.split == data::Split::kTrain) texts.push_back(ex.raw_query);
  }
  return texts;
}

model::SeqPair SpanCorrupt(const std::vector<int>& tokens,
                           const text::Tokenizer& tokenizer, double mask_rate,
                           int mean_span_length, Rng* rng) {
  model::SeqPair pair;
  const int n = static_cast<int>(tokens.size());
  if (n == 0) {
    pair.tgt.push_back(tokenizer.eos_id());
    return pair;
  }
  const int budget = std::max(1, static_cast<int>(n * mask_rate + 0.5));
  // Choose span start positions greedily over a random permutation, taking
  // non-overlapping spans until the mask budget is spent.
  std::vector<bool> masked(static_cast<size_t>(n), false);
  int masked_count = 0;
  int guard = 0;
  while (masked_count < budget && guard < 8 * n) {
    ++guard;
    const int span_len =
        std::max(1, mean_span_length - 1 + rng->UniformInt(3));  // mean ~3
    const int start = rng->UniformInt(n);
    bool clash = false;
    for (int i = start; i < std::min(n, start + span_len); ++i) {
      // Require a gap so adjacent spans do not merge into one sentinel.
      if (masked[static_cast<size_t>(i)] ||
          (i > 0 && masked[static_cast<size_t>(i - 1)]) ||
          (i + 1 < n && masked[static_cast<size_t>(i + 1)])) {
        clash = true;
        break;
      }
    }
    if (clash) continue;
    for (int i = start; i < std::min(n, start + span_len); ++i) {
      masked[static_cast<size_t>(i)] = true;
      ++masked_count;
    }
  }
  int sentinel = 0;
  int i = 0;
  while (i < n) {
    if (!masked[static_cast<size_t>(i)] ||
        sentinel >= text::kNumSentinels) {
      // Unmasked token, or the sentinel supply ran out: copy through.
      pair.src.push_back(tokens[static_cast<size_t>(i)]);
      ++i;
      continue;
    }
    pair.src.push_back(tokenizer.sentinel_id(sentinel));
    pair.tgt.push_back(tokenizer.sentinel_id(sentinel));
    while (i < n && masked[static_cast<size_t>(i)]) {
      pair.tgt.push_back(tokens[static_cast<size_t>(i)]);
      ++i;
    }
    ++sentinel;
  }
  // Closing sentinel, as in the T5 reference implementation.
  if (sentinel < text::kNumSentinels) {
    pair.tgt.push_back(tokenizer.sentinel_id(sentinel));
  }
  pair.src.push_back(tokenizer.eos_id());
  pair.tgt.push_back(tokenizer.eos_id());
  return pair;
}

std::vector<model::SeqPair> BuildPretrainPairs(
    const CorpusBundle& bundle, const text::Tokenizer& tokenizer,
    const PretrainOptions& options) {
  VIST5_TRACE_SPAN("pretrain/build_pairs");
  Rng rng(options.seed);
  std::vector<model::SeqPair> pairs;
  size_t bdc_pairs = 0;
  if (options.include_bdc) {
    VIST5_TRACE_SPAN("pretrain/bdc");
    for (const auto& [a, b] : BuildBdcTextPairs(bundle)) {
      model::SeqPair forward;
      forward.src = tokenizer.Encode(a);
      forward.tgt = tokenizer.EncodeWithEos(b);
      forward.weight = 0.5;
      model::SeqPair backward;
      backward.src = tokenizer.Encode(b);
      backward.tgt = tokenizer.EncodeWithEos(a);
      backward.weight = 0.5;
      pairs.push_back(std::move(forward));
      pairs.push_back(std::move(backward));
      bdc_pairs += 2;
    }
  }
  size_t mlm_pairs = 0;
  if (options.include_mlm) {
    VIST5_TRACE_SPAN("pretrain/mlm");
    obs::Histogram* len_hist = obs::GetHistogram("pretrain/mlm_src_tokens");
    for (const std::string& text : BuildMlmTexts(bundle)) {
      std::vector<int> tokens = tokenizer.Encode(text);
      if (static_cast<int>(tokens.size()) > options.max_tokens) {
        tokens.resize(static_cast<size_t>(options.max_tokens));
      }
      len_hist->Observe(static_cast<double>(tokens.size()));
      model::SeqPair pair = SpanCorrupt(tokens, tokenizer,
                                        options.mlm_mask_rate,
                                        options.mean_span_length, &rng);
      pair.weight = 1.0;
      pairs.push_back(std::move(pair));
      ++mlm_pairs;
    }
  }
  // Objective-mix accounting (Table XII ablations read these off the
  // snapshot instead of recomputing corpus sizes).
  obs::GetCounter("pretrain/bdc_pairs")->Add(static_cast<int64_t>(bdc_pairs));
  obs::GetCounter("pretrain/mlm_pairs")->Add(static_cast<int64_t>(mlm_pairs));
  return pairs;
}

}  // namespace core
}  // namespace vist5
