#include "core/datavist5.h"

#include <cmath>

namespace vist5 {
namespace core {

std::vector<model::SeqPair> TokenizeTaskExamples(
    Task task, const std::vector<TaskExample>& examples,
    const text::Tokenizer& tokenizer, double weight) {
  std::vector<model::SeqPair> pairs;
  pairs.reserve(examples.size());
  for (const TaskExample& ex : examples) {
    model::SeqPair pair;
    pair.src = tokenizer.Encode(ex.source);
    pair.tgt = tokenizer.EncodeWithEos(TaskTarget(task, ex.target));
    pair.weight = weight;
    pairs.push_back(std::move(pair));
  }
  return pairs;
}

double TemperatureWeight(size_t task_size, double temperature) {
  if (task_size == 0) return 0.0;
  return std::pow(static_cast<double>(task_size), 1.0 / temperature - 1.0);
}

std::vector<model::SeqPair> BuildMftPairs(const CorpusBundle& bundle,
                                          const text::Tokenizer& tokenizer,
                                          double temperature) {
  std::vector<model::SeqPair> pairs;
  for (Task task : {Task::kTextToVis, Task::kVisToText, Task::kFeVisQa,
                    Task::kTableToText}) {
    const auto examples = BuildTaskExamples(task, bundle, data::Split::kTrain);
    const double weight = TemperatureWeight(examples.size(), temperature);
    auto task_pairs = TokenizeTaskExamples(task, examples, tokenizer, weight);
    pairs.insert(pairs.end(), std::make_move_iterator(task_pairs.begin()),
                 std::make_move_iterator(task_pairs.end()));
  }
  return pairs;
}

DataVisT5::DataVisT5(text::Tokenizer tokenizer, const Options& options)
    : tokenizer_(std::move(tokenizer)), options_(options) {
  const nn::TransformerConfig config =
      options.size == Options::Size::kSmall
          ? nn::TransformerConfig::T5Small(tokenizer_.vocab_size())
          : nn::TransformerConfig::T5Base(tokenizer_.vocab_size());
  model_ = std::make_unique<model::TransformerSeq2Seq>(
      config, tokenizer_.pad_id(), tokenizer_.eos_id(), options.seed);
}

model::TrainStats DataVisT5::Pretrain(
    const CorpusBundle& bundle, const PretrainOptions& pretrain_options,
    const model::TrainOptions& train_options) {
  const auto pairs = BuildPretrainPairs(bundle, tokenizer_, pretrain_options);
  return model::TrainSeq2Seq(model_.get(), pairs, tokenizer_.pad_id(),
                             train_options);
}

model::TrainStats DataVisT5::FinetuneMultiTask(
    const CorpusBundle& bundle, const model::TrainOptions& train_options,
    double temperature) {
  const auto pairs = BuildMftPairs(bundle, tokenizer_, temperature);
  return model::TrainSeq2Seq(model_.get(), pairs, tokenizer_.pad_id(),
                             train_options);
}

model::TrainStats DataVisT5::FinetuneSingleTask(
    Task task, const CorpusBundle& bundle,
    const model::TrainOptions& train_options) {
  const auto pairs = TokenizeTaskExamples(
      task, BuildTaskExamples(task, bundle, data::Split::kTrain), tokenizer_);
  return model::TrainSeq2Seq(model_.get(), pairs, tokenizer_.pad_id(),
                             train_options);
}

std::string DataVisT5::Run(const std::string& source,
                           const model::GenerationOptions& gen) const {
  std::vector<int> src = tokenizer_.Encode(source);
  if (static_cast<int>(src.size()) > options_.max_src_len) {
    src.resize(static_cast<size_t>(options_.max_src_len));
  }
  const std::vector<int> out = model_->Generate(src, gen);
  return StripTaskToken(tokenizer_.Decode(out));
}

std::string DataVisT5::TextToVis(const std::string& question,
                                 const db::Database& database,
                                 const model::GenerationOptions& gen) const {
  return Run(TextToVisSource(question, SchemaForQuestion(question, database)),
             gen);
}

std::string DataVisT5::VisToText(const std::string& query,
                                 const db::Database& database,
                                 const model::GenerationOptions& gen) const {
  return Run(VisToTextSource(query, SchemaForQuery(query, database)), gen);
}

std::string DataVisT5::AnswerQuestion(const std::string& question,
                                      const std::string& query,
                                      const db::Database& database,
                                      const std::string& table_enc,
                                      const model::GenerationOptions& gen) const {
  return Run(
      FeVisQaSource(question, query, SchemaForQuery(query, database), table_enc),
      gen);
}

std::string DataVisT5::TableToText(const std::string& table_enc,
                                   const model::GenerationOptions& gen) const {
  return Run(TableToTextSource(table_enc), gen);
}

}  // namespace core
}  // namespace vist5
