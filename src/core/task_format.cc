#include "core/task_format.h"

#include "dv/encoding.h"
#include "dv/parser.h"
#include "util/string_util.h"

namespace vist5 {
namespace core {

const char* TaskName(Task task) {
  switch (task) {
    case Task::kTextToVis:
      return "text-to-vis";
    case Task::kVisToText:
      return "vis-to-text";
    case Task::kFeVisQa:
      return "fevisqa";
    case Task::kTableToText:
      return "table-to-text";
  }
  return "?";
}

std::string TextToVisSource(const std::string& question,
                            const std::string& schema_enc) {
  return "<nl> " + question + " <schema> " + schema_enc;
}

std::string VisToTextSource(const std::string& query,
                            const std::string& schema_enc) {
  return "<vql> " + query + " <schema> " + schema_enc;
}

std::string FeVisQaSource(const std::string& question,
                          const std::string& query,
                          const std::string& schema_enc,
                          const std::string& table_enc) {
  return "<question> " + question + " <vql> " + query + " <schema> " +
         schema_enc + " <table> " + table_enc;
}

std::string TableToTextSource(const std::string& table_enc) {
  return "<table> " + table_enc;
}

std::string TaskTarget(Task task, const std::string& text) {
  switch (task) {
    case Task::kTextToVis:
      return "<vql> " + text;
    case Task::kVisToText:
    case Task::kTableToText:
      return "<description> " + text;
    case Task::kFeVisQa:
      return "<answer> " + text;
  }
  return text;
}

std::string StripTaskToken(const std::string& decoded) {
  std::string out = Strip(decoded);
  for (const char* token : {"<vql>", "<description>", "<answer>", "<nl>",
                            "<schema>", "<table>", "<question>"}) {
    if (StartsWith(out, token)) {
      out = Strip(out.substr(std::string(token).size()));
      break;
    }
  }
  return out;
}

std::string SchemaForQuestion(const std::string& question,
                              const db::Database& database) {
  return dv::EncodeSchema(dv::FilterSchema(question, database));
}

std::string SchemaForQuery(const std::string& query,
                           const db::Database& database) {
  auto parsed = dv::ParseDvQuery(query);
  if (parsed.ok()) {
    dv::SchemaSubset subset;
    subset.database = database.name();
    for (const std::string& name :
         {parsed->from_table,
          parsed->join ? parsed->join->table : std::string()}) {
      if (name.empty()) continue;
      const db::Table* t = database.FindTable(name);
      if (t == nullptr) continue;
      dv::SchemaSubset::TableColumns tc;
      tc.table = ToLower(t->name());
      for (const db::Column& c : t->columns()) {
        tc.columns.push_back(ToLower(c.name));
      }
      subset.tables.push_back(std::move(tc));
    }
    if (!subset.tables.empty()) return dv::EncodeSchema(subset);
  }
  return dv::EncodeSchema(dv::FilterSchema(query, database));
}

std::vector<TaskExample> BuildTaskExamples(Task task,
                                           const CorpusBundle& bundle,
                                           data::Split split) {
  std::vector<TaskExample> out;
  switch (task) {
    case Task::kTextToVis: {
      for (const auto& ex : bundle.nvbench) {
        if (ex.split != split) continue;
        const db::Database* database = bundle.catalog->Find(ex.database);
        if (database == nullptr) continue;
        TaskExample te;
        te.source = TextToVisSource(ex.question,
                                    SchemaForQuestion(ex.question, *database));
        te.target = ex.query;
        te.database = ex.database;
        out.push_back(std::move(te));
      }
      break;
    }
    case Task::kVisToText: {
      for (const auto& ex : bundle.nvbench) {
        if (ex.split != split) continue;
        const db::Database* database = bundle.catalog->Find(ex.database);
        if (database == nullptr) continue;
        TaskExample te;
        te.source =
            VisToTextSource(ex.query, SchemaForQuery(ex.query, *database));
        te.target = ex.description;
        te.database = ex.database;
        out.push_back(std::move(te));
      }
      break;
    }
    case Task::kFeVisQa: {
      for (const auto& ex : bundle.fevisqa) {
        if (ex.split != split) continue;
        const db::Database* database = bundle.catalog->Find(ex.database);
        if (database == nullptr) continue;
        TaskExample te;
        te.source = FeVisQaSource(ex.question, ex.query,
                                  SchemaForQuery(ex.query, *database),
                                  ex.table_enc);
        te.target = ex.answer;
        te.database = ex.database;
        out.push_back(std::move(te));
      }
      break;
    }
    case Task::kTableToText: {
      for (const auto& ex : bundle.tabletext) {
        if (ex.split != split) continue;
        TaskExample te;
        te.source = TableToTextSource(ex.table_enc);
        te.target = ex.description;
        out.push_back(std::move(te));
      }
      break;
    }
  }
  return out;
}

}  // namespace core
}  // namespace vist5
