#ifndef VIST5_CORE_PRETRAIN_H_
#define VIST5_CORE_PRETRAIN_H_

#include <string>
#include <utility>
#include <vector>

#include "core/task_format.h"
#include "model/seq2seq_model.h"
#include "text/tokenizer.h"

namespace vist5 {
namespace core {

/// Configuration of the hybrid pre-training objectives (Sec. III-E).
struct PretrainOptions {
  /// Fraction of subword tokens masked by span corruption (paper: 15%).
  double mlm_mask_rate = 0.15;
  /// Mean corrupted-span length in tokens (paper: 3).
  int mean_span_length = 3;
  uint64_t seed = 41;
  /// Ablation switches (Table XII "w/o BDC").
  bool include_bdc = true;
  bool include_mlm = true;
  /// Truncation applied to MLM inputs before corruption.
  int max_tokens = 112;
};

/// The Bidirectional Dual-Corpus text pairs of Sec. IV-B, train split only:
///   NL + Schema               <-> DV query
///   DV query + Schema         <-> Description
///   Table                     <-> Description
///   Question + DV query + Schema + Table <-> Answer
std::vector<std::pair<std::string, std::string>> BuildBdcTextPairs(
    const CorpusBundle& bundle);

/// The flat text corpus fed to span-corruption MLM: NL questions and
/// schemas from NVBench, DV queries, FeVisQA questions and answers, tables
/// and descriptions (Sec. IV-B).
std::vector<std::string> BuildMlmTexts(const CorpusBundle& bundle);

/// Every training-split surface string (task sources, targets, raw
/// annotator-style queries) — the corpus the tokenizer vocabulary is built
/// from.
std::vector<std::string> CollectTokenizerCorpus(const CorpusBundle& bundle);

/// T5 span corruption of one token sequence: consecutive spans are replaced
/// by sentinel tokens in the input; the target lists each sentinel followed
/// by the tokens it hid (Sec. III-E, Fig. 5).
model::SeqPair SpanCorrupt(const std::vector<int>& tokens,
                           const text::Tokenizer& tokenizer, double mask_rate,
                           int mean_span_length, Rng* rng);

/// Materializes the full hybrid pre-training set: BDC pairs in both
/// directions (each weighted 0.5, implementing the equal-probability
/// direction choice) plus one span-corruption example per MLM text.
std::vector<model::SeqPair> BuildPretrainPairs(const CorpusBundle& bundle,
                                               const text::Tokenizer& tokenizer,
                                               const PretrainOptions& options);

}  // namespace core
}  // namespace vist5

#endif  // VIST5_CORE_PRETRAIN_H_
