#include "util/runtime.h"

#include <malloc.h>

namespace vist5 {

void TuneAllocatorForTraining() {
  static bool done = false;
  if (done) return;
  done = true;
#ifdef M_MMAP_THRESHOLD
  mallopt(M_MMAP_THRESHOLD, 1 << 30);
#endif
#ifdef M_TRIM_THRESHOLD
  mallopt(M_TRIM_THRESHOLD, 1 << 30);
#endif
}

}  // namespace vist5
