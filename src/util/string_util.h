#ifndef VIST5_UTIL_STRING_UTIL_H_
#define VIST5_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace vist5 {

/// Splits `text` on `delim`, optionally dropping empty pieces.
std::vector<std::string> Split(std::string_view text, char delim,
                               bool skip_empty = false);

/// Splits `text` on any run of ASCII whitespace; never yields empty tokens.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lowercase copy.
std::string ToLower(std::string_view text);

/// Removes leading and trailing ASCII whitespace.
std::string Strip(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);
bool Contains(std::string_view text, std::string_view needle);

/// Replaces every occurrence of `from` (must be non-empty) with `to`.
std::string ReplaceAll(std::string_view text, std::string_view from,
                       std::string_view to);

/// Collapses runs of whitespace into single spaces and strips the ends,
/// producing the canonical single-spaced form used throughout encoding.
std::string NormalizeSpaces(std::string_view text);

/// Contiguous word n-grams of order `n` over whitespace tokens of `text`,
/// joined back with single spaces. Used by database-schema filtration.
std::vector<std::string> WordNgrams(std::string_view text, int n);

}  // namespace vist5

#endif  // VIST5_UTIL_STRING_UTIL_H_
