#include "util/string_util.h"

#include <cctype>

namespace vist5 {

std::vector<std::string> Split(std::string_view text, char delim,
                               bool skip_empty) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= text.size()) {
    size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) pos = text.size();
    std::string_view piece = text.substr(start, pos - start);
    if (!skip_empty || !piece.empty()) out.emplace_back(piece);
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string Strip(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin])))
    ++begin;
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])))
    --end;
  return std::string(text.substr(begin, end - begin));
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool Contains(std::string_view text, std::string_view needle) {
  return text.find(needle) != std::string_view::npos;
}

std::string ReplaceAll(std::string_view text, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(text);
  std::string out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(text.substr(start));
      break;
    }
    out.append(text.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
  return out;
}

std::string NormalizeSpaces(std::string_view text) {
  return Join(SplitWhitespace(text), " ");
}

std::vector<std::string> WordNgrams(std::string_view text, int n) {
  std::vector<std::string> tokens = SplitWhitespace(text);
  std::vector<std::string> out;
  if (n <= 0 || tokens.size() < static_cast<size_t>(n)) return out;
  for (size_t i = 0; i + n <= tokens.size(); ++i) {
    std::string gram = tokens[i];
    for (int k = 1; k < n; ++k) {
      gram += ' ';
      gram += tokens[i + k];
    }
    out.push_back(std::move(gram));
  }
  return out;
}

}  // namespace vist5
