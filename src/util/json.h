#ifndef VIST5_UTIL_JSON_H_
#define VIST5_UTIL_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace vist5 {

/// Minimal JSON document value used to emit Vega-Lite specifications and
/// experiment reports. Write-only (no parser is needed by the library).
/// Object keys preserve insertion order, matching the field order Vega-Lite
/// specs conventionally use.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b) {
    JsonValue v;
    v.kind_ = Kind::kBool;
    v.bool_ = b;
    return v;
  }
  static JsonValue Number(double d) {
    JsonValue v;
    v.kind_ = Kind::kNumber;
    v.number_ = d;
    return v;
  }
  static JsonValue String(std::string s) {
    JsonValue v;
    v.kind_ = Kind::kString;
    v.string_ = std::move(s);
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }

  /// Appends an element; the value must be an array.
  void Append(JsonValue value);

  /// Sets (or overwrites) an object field; the value must be an object.
  void Set(const std::string& key, JsonValue value);

  /// Serializes with 2-space indentation when `pretty` is true.
  std::string ToString(bool pretty = true) const;

 private:
  void WriteTo(std::string* out, bool pretty, int indent) const;
  static void EscapeTo(const std::string& s, std::string* out);

  Kind kind_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

}  // namespace vist5

#endif  // VIST5_UTIL_JSON_H_
