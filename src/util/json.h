#ifndef VIST5_UTIL_JSON_H_
#define VIST5_UTIL_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace vist5 {

/// Minimal JSON document value used to emit Vega-Lite specifications and
/// experiment reports, and to parse the line-delimited request protocol of
/// the serving front end (docs/SERVING.md). Object keys preserve insertion
/// order, matching the field order Vega-Lite specs conventionally use.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b) {
    JsonValue v;
    v.kind_ = Kind::kBool;
    v.bool_ = b;
    return v;
  }
  static JsonValue Number(double d) {
    JsonValue v;
    v.kind_ = Kind::kNumber;
    v.number_ = d;
    return v;
  }
  static JsonValue String(std::string s) {
    JsonValue v;
    v.kind_ = Kind::kString;
    v.string_ = std::move(s);
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }

  /// Appends an element; the value must be an array.
  void Append(JsonValue value);

  /// Sets (or overwrites) an object field; the value must be an object.
  void Set(const std::string& key, JsonValue value);

  /// Serializes with 2-space indentation when `pretty` is true.
  std::string ToString(bool pretty = true) const;

  /// Parses one JSON document from `text` (the whole string must be
  /// consumed apart from trailing whitespace). Strict on structure,
  /// lenient on nothing: unquoted keys, trailing commas, and comments are
  /// rejected. `\uXXXX` escapes outside ASCII are decoded to UTF-8.
  static StatusOr<JsonValue> Parse(std::string_view text);

  // --- read accessors (parser-side mirror of the builders) -------------
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_bool() const { return kind_ == Kind::kBool; }

  /// Typed views with fallbacks (no aborts on type mismatch, so protocol
  /// handlers can validate with plain control flow).
  bool bool_value(bool fallback = false) const {
    return kind_ == Kind::kBool ? bool_ : fallback;
  }
  double number_value(double fallback = 0) const {
    return kind_ == Kind::kNumber ? number_ : fallback;
  }
  const std::string& string_value() const { return string_; }

  /// Object field lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  /// Array/object element count (0 for scalars).
  size_t size() const;
  /// Array element `i`; must be an array with i < size().
  const JsonValue& at(size_t i) const;

 private:
  void WriteTo(std::string* out, bool pretty, int indent) const;
  static void EscapeTo(const std::string& s, std::string* out);

  Kind kind_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

}  // namespace vist5

#endif  // VIST5_UTIL_JSON_H_
