#ifndef VIST5_UTIL_LOGGING_H_
#define VIST5_UTIL_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace vist5 {

enum class LogSeverity { kInfo = 0, kWarning = 1, kError = 2, kFatal = 3 };

/// Minimum severity emitted to stderr; below this, log lines are dropped.
/// Initialized from the VIST5_LOG_LEVEL env var (info|warn|error|fatal, or
/// a digit 0-3) and defaulting to kInfo; benches raise it to keep table
/// output clean. Reads and writes are thread-safe.
LogSeverity MinLogSeverity();
void SetMinLogSeverity(LogSeverity severity);

namespace internal {

/// Writes one fully-assembled log line (newline included) to stderr as a
/// single write, so lines from concurrent threads never interleave.
void EmitLogLine(const std::string& line);

/// Stream-style log sink. Flushes one line on destruction; aborts the
/// process for kFatal messages.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line)
      : severity_(severity) {
    stream_ << "[" << Label(severity) << " " << Basename(file) << ":" << line
            << "] ";
  }

  ~LogMessage() {
    if (severity_ >= MinLogSeverity() || severity_ == LogSeverity::kFatal) {
      stream_ << '\n';
      EmitLogLine(stream_.str());
    }
    if (severity_ == LogSeverity::kFatal) std::abort();
  }

  std::ostringstream& stream() { return stream_; }

 private:
  static const char* Label(LogSeverity s) {
    switch (s) {
      case LogSeverity::kInfo:
        return "INFO";
      case LogSeverity::kWarning:
        return "WARN";
      case LogSeverity::kError:
        return "ERROR";
      case LogSeverity::kFatal:
        return "FATAL";
    }
    return "?";
  }

  static const char* Basename(const char* path) {
    const char* base = path;
    for (const char* p = path; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    return base;
  }

  LogSeverity severity_;
  std::ostringstream stream_;
};

struct LogMessageVoidify {
  // The operator with lowest precedence below ?: so the macro compiles in
  // expression position.
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace vist5

#define VIST5_LOG(severity)                                            \
  ::vist5::internal::LogMessage(::vist5::LogSeverity::k##severity,     \
                                __FILE__, __LINE__)                    \
      .stream()

/// Aborts with a message if `cond` does not hold. Active in all build modes:
/// invariant violations in a training stack corrupt results silently
/// otherwise.
#define VIST5_CHECK(cond)                                               \
  (cond) ? (void)0                                                      \
         : ::vist5::internal::LogMessageVoidify() &                     \
               ::vist5::internal::LogMessage(                           \
                   ::vist5::LogSeverity::kFatal, __FILE__, __LINE__)    \
                   .stream()                                            \
                   << "Check failed: " #cond " "

#define VIST5_CHECK_OK(expr)                                            \
  do {                                                                  \
    ::vist5::Status _st = (expr);                                       \
    VIST5_CHECK(_st.ok()) << _st.ToString();                            \
  } while (0)

#define VIST5_CHECK_EQ(a, b) VIST5_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define VIST5_CHECK_NE(a, b) VIST5_CHECK((a) != (b))
#define VIST5_CHECK_LT(a, b) VIST5_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define VIST5_CHECK_LE(a, b) VIST5_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define VIST5_CHECK_GT(a, b) VIST5_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define VIST5_CHECK_GE(a, b) VIST5_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#endif  // VIST5_UTIL_LOGGING_H_
