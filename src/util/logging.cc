#include "util/logging.h"

namespace vist5 {
namespace {
LogSeverity g_min_severity = LogSeverity::kInfo;
}  // namespace

LogSeverity MinLogSeverity() { return g_min_severity; }
void SetMinLogSeverity(LogSeverity severity) { g_min_severity = severity; }

}  // namespace vist5
