#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace vist5 {
namespace {

LogSeverity SeverityFromEnv() {
  const char* value = std::getenv("VIST5_LOG_LEVEL");
  if (value == nullptr || value[0] == '\0') return LogSeverity::kInfo;
  if (std::isdigit(static_cast<unsigned char>(value[0]))) {
    const int n = std::atoi(value);
    if (n >= 0 && n <= 3) return static_cast<LogSeverity>(n);
    return LogSeverity::kInfo;
  }
  std::string lower;
  for (const char* p = value; *p; ++p) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));
  }
  if (lower == "info") return LogSeverity::kInfo;
  if (lower == "warn" || lower == "warning") return LogSeverity::kWarning;
  if (lower == "error") return LogSeverity::kError;
  if (lower == "fatal") return LogSeverity::kFatal;
  return LogSeverity::kInfo;
}

std::atomic<int>& MinSeverityFlag() {
  static std::atomic<int> severity(static_cast<int>(SeverityFromEnv()));
  return severity;
}

}  // namespace

LogSeverity MinLogSeverity() {
  return static_cast<LogSeverity>(
      MinSeverityFlag().load(std::memory_order_relaxed));
}

void SetMinLogSeverity(LogSeverity severity) {
  MinSeverityFlag().store(static_cast<int>(severity),
                          std::memory_order_relaxed);
}

namespace internal {

void EmitLogLine(const std::string& line) {
  // One fwrite call: POSIX stdio locks the stream per call, so the whole
  // line lands contiguously even under concurrent logging.
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);
}

}  // namespace internal
}  // namespace vist5
