#ifndef VIST5_UTIL_RUNTIME_H_
#define VIST5_UTIL_RUNTIME_H_

namespace vist5 {

/// Tunes glibc malloc for tensor workloads: raises the mmap and trim
/// thresholds so the large activation buffers the training loop allocates
/// and frees every step are recycled from the heap instead of being
/// mmap/munmap'd (which costs a page-fault storm — ~30% of wall time
/// without this). Idempotent; call once at process start.
void TuneAllocatorForTraining();

}  // namespace vist5

#endif  // VIST5_UTIL_RUNTIME_H_
