#include "util/serialize.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace vist5 {
namespace {

/// Lazily built table for the reflected IEEE polynomial 0xEDB88320 (the
/// zlib/PNG CRC). Table-driven, one byte per step: plenty fast for
/// checkpoint-sized buffers and trivially portable.
const uint32_t* Crc32Table() {
  static const uint32_t* table = [] {
    auto* t = new uint32_t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

Status CloseUnlinkAndFail(int fd, const std::string& tmp,
                          const std::string& what) {
  const int saved_errno = errno;
  if (fd >= 0) ::close(fd);
  ::unlink(tmp.c_str());
  return Status::IoError(what + ": " + tmp + " (" +
                         std::strerror(saved_errno) + ")");
}

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t crc) {
  const uint32_t* table = Crc32Table();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

Status AtomicWriteFile(const std::string& path, const std::string& contents) {
  // Recreate missing parent directories: callers routinely point at cache
  // dirs that another process may have cleaned up in the meantime.
  std::error_code ec;
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);

  // Unique sibling temp name: same directory so the final rename() cannot
  // cross a filesystem boundary; pid + process-wide counter so concurrent
  // writers (threads or processes) never collide on it.
  static std::atomic<uint64_t> sequence{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(sequence.fetch_add(1));

  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot open for write: " + tmp + " (" +
                           std::strerror(errno) + ")");
  }
  size_t off = 0;
  while (off < contents.size()) {
    const ssize_t w = ::write(fd, contents.data() + off, contents.size() - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return CloseUnlinkAndFail(fd, tmp, "write failed");
    }
    off += static_cast<size_t>(w);
  }
  // Data must be durable BEFORE the rename publishes the file: rename is
  // atomic in the namespace, but without this fsync a power loss could
  // leave the new name pointing at zero-length/garbage blocks.
  if (::fsync(fd) != 0) return CloseUnlinkAndFail(fd, tmp, "fsync failed");
  if (::close(fd) != 0) return CloseUnlinkAndFail(-1, tmp, "close failed");
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return CloseUnlinkAndFail(-1, tmp, "rename failed");
  }
  // Best-effort: persist the directory entry for the rename itself.
  const std::string dir = parent.empty() ? std::string(".") : parent.string();
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return Status::OK();
}

Status BinaryWriter::Flush(const std::string& path) const {
  return AtomicWriteFile(path, buffer_);
}

StatusOr<BinaryReader> BinaryReader::FromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return BinaryReader(ss.str());
}

Status BinaryReader::ReadString(std::string* s) {
  uint32_t n = 0;
  VIST5_RETURN_IF_ERROR(ReadU32(&n));
  // Validate the declared length against the remaining bytes before
  // touching memory: a corrupt length must not drive an allocation.
  if (n > remaining()) return Status::OutOfRange("truncated string");
  s->assign(data_.data() + pos_, n);
  pos_ += n;
  return Status::OK();
}

Status BinaryReader::ReadFloats(std::vector<float>* v) {
  uint64_t n = 0;
  VIST5_RETURN_IF_ERROR(ReadU64(&n));
  // Divide instead of multiplying: `n * sizeof(float)` can wrap for a
  // corrupt 64-bit length and sail past the bounds check into a bad_alloc.
  if (n > remaining() / sizeof(float)) {
    return Status::OutOfRange("truncated float array");
  }
  v->resize(n);
  std::memcpy(v->data(), data_.data() + pos_, n * sizeof(float));
  pos_ += n * sizeof(float);
  return Status::OK();
}

Status BinaryReader::ReadInts(std::vector<int32_t>* v) {
  uint64_t n = 0;
  VIST5_RETURN_IF_ERROR(ReadU64(&n));
  if (n > remaining() / sizeof(int32_t)) {
    return Status::OutOfRange("truncated int array");
  }
  v->resize(n);
  std::memcpy(v->data(), data_.data() + pos_, n * sizeof(int32_t));
  pos_ += n * sizeof(int32_t);
  return Status::OK();
}

Status BinaryReader::ReadBytes(size_t n, std::string* out) {
  if (n > remaining()) return Status::OutOfRange("truncated byte span");
  out->assign(data_.data() + pos_, n);
  pos_ += n;
  return Status::OK();
}

}  // namespace vist5
