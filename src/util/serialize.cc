#include "util/serialize.h"

#include <filesystem>
#include <fstream>
#include <sstream>

namespace vist5 {

Status BinaryWriter::Flush(const std::string& path) const {
  // Recreate missing parent directories: callers routinely point at cache
  // dirs that another process may have cleaned up in the meantime.
  std::error_code ec;
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out.write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

StatusOr<BinaryReader> BinaryReader::FromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return BinaryReader(ss.str());
}

Status BinaryReader::ReadString(std::string* s) {
  uint32_t n = 0;
  VIST5_RETURN_IF_ERROR(ReadU32(&n));
  if (pos_ + n > data_.size()) return Status::OutOfRange("truncated string");
  s->assign(data_.data() + pos_, n);
  pos_ += n;
  return Status::OK();
}

Status BinaryReader::ReadFloats(std::vector<float>* v) {
  uint64_t n = 0;
  VIST5_RETURN_IF_ERROR(ReadU64(&n));
  if (pos_ + n * sizeof(float) > data_.size()) {
    return Status::OutOfRange("truncated float array");
  }
  v->resize(n);
  std::memcpy(v->data(), data_.data() + pos_, n * sizeof(float));
  pos_ += n * sizeof(float);
  return Status::OK();
}

Status BinaryReader::ReadInts(std::vector<int32_t>* v) {
  uint64_t n = 0;
  VIST5_RETURN_IF_ERROR(ReadU64(&n));
  if (pos_ + n * sizeof(int32_t) > data_.size()) {
    return Status::OutOfRange("truncated int array");
  }
  v->resize(n);
  std::memcpy(v->data(), data_.data() + pos_, n * sizeof(int32_t));
  pos_ += n * sizeof(int32_t);
  return Status::OK();
}

}  // namespace vist5
