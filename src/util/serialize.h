#ifndef VIST5_UTIL_SERIALIZE_H_
#define VIST5_UTIL_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/status.h"

namespace vist5 {

/// CRC-32 (IEEE 802.3, the zlib polynomial) over `n` bytes. Pass the result
/// of a previous call as `crc` to checksum data incrementally. Checkpoint
/// sections carry this so torn or bit-flipped files are rejected instead of
/// silently loaded (docs/CHECKPOINTING.md).
uint32_t Crc32(const void* data, size_t n, uint32_t crc = 0);
inline uint32_t Crc32(const std::string& s) { return Crc32(s.data(), s.size()); }

/// Atomically replaces `path` with `contents`: writes a unique sibling temp
/// file, fsyncs it, renames it over `path`, then fsyncs the parent
/// directory. A crash (even SIGKILL) at any point leaves either the old
/// complete file or the new complete file — never a truncated mix. Missing
/// parent directories are created.
Status AtomicWriteFile(const std::string& path, const std::string& contents);

/// Little-endian binary writer used for model checkpoints. The format is a
/// flat byte stream; callers are responsible for writing a magic/version
/// header (see model/checkpoint.h).
class BinaryWriter {
 public:
  void WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteI32(int32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteF32(float v) { WriteRaw(&v, sizeof(v)); }
  void WriteF64(double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    WriteU64(bits);
  }

  void WriteString(const std::string& s) {
    WriteU32(static_cast<uint32_t>(s.size()));
    WriteRaw(s.data(), s.size());
  }

  /// Appends raw bytes with no length prefix (the caller encodes the
  /// length; used for nested section payloads).
  void WriteBytes(const std::string& s) { WriteRaw(s.data(), s.size()); }

  void WriteFloats(const std::vector<float>& v) {
    WriteU64(v.size());
    WriteRaw(v.data(), v.size() * sizeof(float));
  }

  void WriteInts(const std::vector<int32_t>& v) {
    WriteU64(v.size());
    WriteRaw(v.data(), v.size() * sizeof(int32_t));
  }

  const std::string& buffer() const { return buffer_; }

  /// Atomically replaces `path` with the accumulated buffer (temp file +
  /// fsync + rename, see AtomicWriteFile): a crash mid-save never corrupts
  /// an existing checkpoint.
  Status Flush(const std::string& path) const;

 private:
  void WriteRaw(const void* data, size_t n) {
    buffer_.append(static_cast<const char*>(data), n);
  }

  std::string buffer_;
};

/// Counterpart reader. All reads are bounds-checked against the remaining
/// bytes — including declared array/string lengths, which are validated
/// BEFORE any allocation so a corrupt file with a huge length field returns
/// Status instead of throwing bad_alloc — and return errors via Status
/// rather than crashing on truncated files.
class BinaryReader {
 public:
  explicit BinaryReader(std::string data) : data_(std::move(data)) {}

  /// Loads the full contents of `path`.
  static StatusOr<BinaryReader> FromFile(const std::string& path);

  Status ReadU32(uint32_t* v) { return ReadRaw(v, sizeof(*v)); }
  Status ReadU64(uint64_t* v) { return ReadRaw(v, sizeof(*v)); }
  Status ReadI32(int32_t* v) { return ReadRaw(v, sizeof(*v)); }
  Status ReadF32(float* v) { return ReadRaw(v, sizeof(*v)); }
  Status ReadF64(double* v) {
    uint64_t bits = 0;
    VIST5_RETURN_IF_ERROR(ReadU64(&bits));
    std::memcpy(v, &bits, sizeof(bits));
    return Status::OK();
  }

  Status ReadString(std::string* s);
  Status ReadFloats(std::vector<float>* v);
  Status ReadInts(std::vector<int32_t>* v);
  /// Copies the next `n` raw bytes (no length prefix) into `out`.
  Status ReadBytes(size_t n, std::string* out);

  bool AtEnd() const { return pos_ == data_.size(); }
  /// Bytes not yet consumed.
  size_t remaining() const { return data_.size() - pos_; }
  /// The full underlying byte buffer (e.g. for whole-file CRC checks).
  const std::string& data() const { return data_; }

 private:
  Status ReadRaw(void* out, size_t n) {
    if (n > remaining()) {
      return Status::OutOfRange("truncated stream");
    }
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  std::string data_;
  size_t pos_ = 0;
};

}  // namespace vist5

#endif  // VIST5_UTIL_SERIALIZE_H_
