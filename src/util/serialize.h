#ifndef VIST5_UTIL_SERIALIZE_H_
#define VIST5_UTIL_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/status.h"

namespace vist5 {

/// Little-endian binary writer used for model checkpoints. The format is a
/// flat byte stream; callers are responsible for writing a magic/version
/// header (see model/checkpoint.h).
class BinaryWriter {
 public:
  void WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteI32(int32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteF32(float v) { WriteRaw(&v, sizeof(v)); }

  void WriteString(const std::string& s) {
    WriteU32(static_cast<uint32_t>(s.size()));
    WriteRaw(s.data(), s.size());
  }

  void WriteFloats(const std::vector<float>& v) {
    WriteU64(v.size());
    WriteRaw(v.data(), v.size() * sizeof(float));
  }

  void WriteInts(const std::vector<int32_t>& v) {
    WriteU64(v.size());
    WriteRaw(v.data(), v.size() * sizeof(int32_t));
  }

  const std::string& buffer() const { return buffer_; }

  /// Writes the accumulated buffer to `path`, replacing any existing file.
  Status Flush(const std::string& path) const;

 private:
  void WriteRaw(const void* data, size_t n) {
    buffer_.append(static_cast<const char*>(data), n);
  }

  std::string buffer_;
};

/// Counterpart reader. All reads are bounds-checked and return errors via
/// Status rather than crashing on truncated files.
class BinaryReader {
 public:
  explicit BinaryReader(std::string data) : data_(std::move(data)) {}

  /// Loads the full contents of `path`.
  static StatusOr<BinaryReader> FromFile(const std::string& path);

  Status ReadU32(uint32_t* v) { return ReadRaw(v, sizeof(*v)); }
  Status ReadU64(uint64_t* v) { return ReadRaw(v, sizeof(*v)); }
  Status ReadI32(int32_t* v) { return ReadRaw(v, sizeof(*v)); }
  Status ReadF32(float* v) { return ReadRaw(v, sizeof(*v)); }

  Status ReadString(std::string* s);
  Status ReadFloats(std::vector<float>* v);
  Status ReadInts(std::vector<int32_t>* v);

  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  Status ReadRaw(void* out, size_t n) {
    if (pos_ + n > data_.size()) {
      return Status::OutOfRange("truncated stream");
    }
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  std::string data_;
  size_t pos_ = 0;
};

}  // namespace vist5

#endif  // VIST5_UTIL_SERIALIZE_H_
