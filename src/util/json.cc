#include "util/json.h"

#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace vist5 {

void JsonValue::Append(JsonValue value) {
  VIST5_CHECK(kind_ == Kind::kArray);
  array_.push_back(std::move(value));
}

void JsonValue::Set(const std::string& key, JsonValue value) {
  VIST5_CHECK(kind_ == Kind::kObject);
  for (auto& kv : object_) {
    if (kv.first == key) {
      kv.second = std::move(value);
      return;
    }
  }
  object_.emplace_back(key, std::move(value));
}

std::string JsonValue::ToString(bool pretty) const {
  std::string out;
  WriteTo(&out, pretty, 0);
  return out;
}

void JsonValue::EscapeTo(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      case '\r':
        out->append("\\r");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void JsonValue::WriteTo(std::string* out, bool pretty, int indent) const {
  const std::string pad(pretty ? (indent + 1) * 2 : 0, ' ');
  const std::string close_pad(pretty ? indent * 2 : 0, ' ');
  const char* nl = pretty ? "\n" : "";
  switch (kind_) {
    case Kind::kNull:
      out->append("null");
      break;
    case Kind::kBool:
      out->append(bool_ ? "true" : "false");
      break;
    case Kind::kNumber: {
      if (std::isfinite(number_) && number_ == std::floor(number_) &&
          std::fabs(number_) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(number_));
        out->append(buf);
      } else {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%g", number_);
        out->append(buf);
      }
      break;
    }
    case Kind::kString:
      EscapeTo(string_, out);
      break;
    case Kind::kArray: {
      if (array_.empty()) {
        out->append("[]");
        break;
      }
      out->append("[");
      out->append(nl);
      for (size_t i = 0; i < array_.size(); ++i) {
        out->append(pad);
        array_[i].WriteTo(out, pretty, indent + 1);
        if (i + 1 < array_.size()) out->append(",");
        out->append(nl);
      }
      out->append(close_pad);
      out->append("]");
      break;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        out->append("{}");
        break;
      }
      out->append("{");
      out->append(nl);
      for (size_t i = 0; i < object_.size(); ++i) {
        out->append(pad);
        EscapeTo(object_[i].first, out);
        out->append(pretty ? ": " : ":");
        object_[i].second.WriteTo(out, pretty, indent + 1);
        if (i + 1 < object_.size()) out->append(",");
        out->append(nl);
      }
      out->append(close_pad);
      out->append("}");
      break;
    }
  }
}

}  // namespace vist5
