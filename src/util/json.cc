#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/logging.h"

namespace vist5 {

namespace {

/// Finiteness by bit pattern. The release build compiles with -ffast-math,
/// under which the compiler assumes no inf/nan exist and folds
/// std::isfinite to `true` — so a std::isfinite guard here silently never
/// fires (that is exactly how non-finite rates used to leak into response
/// lines as invalid "inf"/"nan" literals).
bool IsFiniteBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return (bits & 0x7ff0000000000000ULL) != 0x7ff0000000000000ULL;
}

}  // namespace

void JsonValue::Append(JsonValue value) {
  VIST5_CHECK(kind_ == Kind::kArray);
  array_.push_back(std::move(value));
}

void JsonValue::Set(const std::string& key, JsonValue value) {
  VIST5_CHECK(kind_ == Kind::kObject);
  for (auto& kv : object_) {
    if (kv.first == key) {
      kv.second = std::move(value);
      return;
    }
  }
  object_.emplace_back(key, std::move(value));
}

std::string JsonValue::ToString(bool pretty) const {
  std::string out;
  WriteTo(&out, pretty, 0);
  return out;
}

void JsonValue::EscapeTo(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      case '\r':
        out->append("\\r");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void JsonValue::WriteTo(std::string* out, bool pretty, int indent) const {
  const std::string pad(pretty ? (indent + 1) * 2 : 0, ' ');
  const std::string close_pad(pretty ? indent * 2 : 0, ' ');
  const char* nl = pretty ? "\n" : "";
  switch (kind_) {
    case Kind::kNull:
      out->append("null");
      break;
    case Kind::kBool:
      out->append(bool_ ? "true" : "false");
      break;
    case Kind::kNumber: {
      if (!IsFiniteBits(number_)) {
        // JSON has no inf/nan literal; "%g" would print one and corrupt
        // the whole document for strict readers. Serialize as null — the
        // same convention Parse enforces on the way in.
        out->append("null");
        break;
      }
      if (number_ == std::floor(number_) && std::fabs(number_) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(number_));
        out->append(buf);
      } else {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%g", number_);
        out->append(buf);
      }
      break;
    }
    case Kind::kString:
      EscapeTo(string_, out);
      break;
    case Kind::kArray: {
      if (array_.empty()) {
        out->append("[]");
        break;
      }
      out->append("[");
      out->append(nl);
      for (size_t i = 0; i < array_.size(); ++i) {
        out->append(pad);
        array_[i].WriteTo(out, pretty, indent + 1);
        if (i + 1 < array_.size()) out->append(",");
        out->append(nl);
      }
      out->append(close_pad);
      out->append("]");
      break;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        out->append("{}");
        break;
      }
      out->append("{");
      out->append(nl);
      for (size_t i = 0; i < object_.size(); ++i) {
        out->append(pad);
        EscapeTo(object_[i].first, out);
        out->append(pretty ? ": " : ":");
        object_[i].second.WriteTo(out, pretty, indent + 1);
        if (i + 1 < object_.size()) out->append(",");
        out->append(nl);
      }
      out->append(close_pad);
      out->append("}");
      break;
    }
  }
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& kv : object_) {
    if (kv.first == key) return &kv.second;
  }
  return nullptr;
}

size_t JsonValue::size() const {
  switch (kind_) {
    case Kind::kArray:
      return array_.size();
    case Kind::kObject:
      return object_.size();
    default:
      return 0;
  }
}

const JsonValue& JsonValue::at(size_t i) const {
  VIST5_CHECK(kind_ == Kind::kArray);
  VIST5_CHECK_LT(i, array_.size());
  return array_[i];
}

namespace {

/// Recursive-descent JSON parser over a string_view cursor. Errors carry
/// the byte offset so malformed protocol lines are diagnosable.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> ParseDocument() {
    JsonValue v;
    VIST5_RETURN_IF_ERROR(ParseValue(&v, /*depth=*/0));
    SkipWhitespace();
    if (pos_ != text_.size()) return Error("trailing characters");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("json parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) {
      return Error(std::string("expected '") + c + "'");
    }
    return Status::OK();
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        VIST5_RETURN_IF_ERROR(ParseString(&s));
        *out = JsonValue::String(std::move(s));
        return Status::OK();
      }
      case 't':
        return ParseLiteral("true", JsonValue::Bool(true), out);
      case 'f':
        return ParseLiteral("false", JsonValue::Bool(false), out);
      case 'n':
        return ParseLiteral("null", JsonValue::Null(), out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseLiteral(std::string_view word, JsonValue value, JsonValue* out) {
    if (text_.substr(pos_, word.size()) != word) return Error("bad literal");
    pos_ += word.size();
    *out = std::move(value);
    return Status::OK();
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    // IsFiniteBits, not std::isfinite: -ffast-math folds the latter to
    // true, which would let strtod's "inf"/"nan" spellings through.
    if (end != token.c_str() + token.size() || !IsFiniteBits(value)) {
      pos_ = start;
      return Error("malformed number");
    }
    *out = JsonValue::Number(value);
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    VIST5_RETURN_IF_ERROR(Expect('"'));
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          VIST5_RETURN_IF_ERROR(ParseHex4(&code));
          AppendUtf8(code, out);
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
  }

  Status ParseHex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Error("bad hex digit in \\u escape");
      }
    }
    pos_ += 4;
    *out = v;
    return Status::OK();
  }

  /// Encodes one code point (no surrogate-pair recombination: lone
  /// surrogates encode as-is, which round-trips our own writer).
  static void AppendUtf8(unsigned code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    VIST5_RETURN_IF_ERROR(Expect('['));
    *out = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue element;
      VIST5_RETURN_IF_ERROR(ParseValue(&element, depth + 1));
      out->Append(std::move(element));
      SkipWhitespace();
      if (Consume(']')) return Status::OK();
      VIST5_RETURN_IF_ERROR(Expect(','));
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    VIST5_RETURN_IF_ERROR(Expect('{'));
    *out = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      std::string key;
      VIST5_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      VIST5_RETURN_IF_ERROR(Expect(':'));
      JsonValue value;
      VIST5_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->Set(key, std::move(value));
      SkipWhitespace();
      if (Consume('}')) return Status::OK();
      VIST5_RETURN_IF_ERROR(Expect(','));
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<JsonValue> JsonValue::Parse(std::string_view text) {
  return JsonParser(text).ParseDocument();
}

}  // namespace vist5
