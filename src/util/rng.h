#ifndef VIST5_UTIL_RNG_H_
#define VIST5_UTIL_RNG_H_

#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace vist5 {

/// Deterministic, platform-independent PRNG (splitmix64-seeded
/// xoshiro256**). Every random decision in the library flows through this
/// class so experiments reproduce bit-for-bit across runs and machines;
/// <random> distributions are avoided because their outputs are
/// implementation-defined.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // splitmix64 expansion of the seed into the 4-word state.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      state_[i] = z ^ (z >> 31);
    }
  }

  /// Raw 256-bit generator state, for checkpointing (docs/CHECKPOINTING.md).
  std::array<uint64_t, 4> State() const {
    return {state_[0], state_[1], state_[2], state_[3]};
  }

  /// Restores state captured by State(): the stream resumes exactly where
  /// it left off, so a resumed training run draws the same values an
  /// uninterrupted one would.
  void SetState(const std::array<uint64_t, 4>& state) {
    for (int i = 0; i < 4; ++i) state_[i] = state[i];
  }

  /// Uniform 64-bit value.
  uint64_t NextU64() {
    uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be positive.
  int UniformInt(int bound) {
    VIST5_CHECK_GT(bound, 0);
    return static_cast<int>(NextU64() % static_cast<uint64_t>(bound));
  }

  /// Uniform integer in [lo, hi] inclusive.
  int UniformRange(int lo, int hi) {
    VIST5_CHECK_LE(lo, hi);
    return lo + UniformInt(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [lo, hi).
  float UniformFloat(float lo, float hi) {
    return lo + static_cast<float>(UniformDouble()) * (hi - lo);
  }

  /// Bernoulli draw with success probability `p`.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Standard normal via Box-Muller.
  float Normal() {
    double u1 = UniformDouble();
    double u2 = UniformDouble();
    if (u1 < 1e-12) u1 = 1e-12;
    return static_cast<float>(std::sqrt(-2.0 * std::log(u1)) *
                              std::cos(2.0 * M_PI * u2));
  }

  /// Samples an index from unnormalized non-negative weights.
  int Categorical(const std::vector<double>& weights) {
    double total = 0;
    for (double w : weights) total += w;
    VIST5_CHECK_GT(total, 0.0);
    double r = UniformDouble() * total;
    double acc = 0;
    for (size_t i = 0; i < weights.size(); ++i) {
      acc += weights[i];
      if (r < acc) return static_cast<int>(i);
    }
    return static_cast<int>(weights.size()) - 1;
  }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextU64() % i);
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// Picks a uniformly random element of a non-empty vector.
  template <typename T>
  const T& Choice(const std::vector<T>& items) {
    VIST5_CHECK(!items.empty());
    return items[UniformInt(static_cast<int>(items.size()))];
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace vist5

#endif  // VIST5_UTIL_RNG_H_
