#ifndef VIST5_UTIL_STATUS_H_
#define VIST5_UTIL_STATUS_H_

#include <cstdlib>
#include <optional>
#include <iostream>
#include <string>
#include <utility>

namespace vist5 {

/// Canonical error codes, modeled after absl::StatusCode / arrow::StatusCode.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  kIoError,
  kUnavailable,
};

/// Returns a short human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Exception-free error propagation value. A `Status` is either OK or carries
/// a code plus a message. Library code never throws; fallible functions
/// return `Status` or `StatusOr<T>`.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  /// Transient overload (e.g. a full admission queue): retrying later is
  /// expected to succeed.
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Either a value of type `T` or a non-OK `Status` explaining why the value
/// is absent. Accessing `value()` on an error aborts the program.
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value or from an error Status keeps call
  /// sites terse (`return result;` / `return Status::NotFound(...)`).
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}
  StatusOr(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      std::cerr << "StatusOr constructed from OK status without a value\n";
      std::abort();
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    EnsureOk();
    return *value_;
  }
  T& value() & {
    EnsureOk();
    return *value_;
  }
  T&& value() && {
    EnsureOk();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value if OK, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void EnsureOk() const {
    if (!status_.ok()) {
      std::cerr << "StatusOr::value() on error: " << status_.ToString()
                << "\n";
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status from an expression to the caller.
#define VIST5_RETURN_IF_ERROR(expr)              \
  do {                                           \
    ::vist5::Status _st = (expr);                \
    if (!_st.ok()) return _st;                   \
  } while (0)

/// Evaluates a StatusOr expression, propagating errors; on success assigns
/// the contained value to `lhs`.
#define VIST5_ASSIGN_OR_RETURN(lhs, expr)          \
  auto VIST5_CONCAT_(_sor_, __LINE__) = (expr);    \
  if (!VIST5_CONCAT_(_sor_, __LINE__).ok())        \
    return VIST5_CONCAT_(_sor_, __LINE__).status(); \
  lhs = std::move(VIST5_CONCAT_(_sor_, __LINE__)).value()

#define VIST5_CONCAT_IMPL_(a, b) a##b
#define VIST5_CONCAT_(a, b) VIST5_CONCAT_IMPL_(a, b)

}  // namespace vist5

#endif  // VIST5_UTIL_STATUS_H_
