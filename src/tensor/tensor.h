#ifndef VIST5_TENSOR_TENSOR_H_
#define VIST5_TENSOR_TENSOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"

namespace vist5 {

/// Shared storage + autograd node behind a Tensor handle.
struct TensorImpl {
  std::vector<int> shape;
  std::vector<float> data;
  /// Gradient buffer; allocated lazily on first accumulation.
  std::vector<float> grad;
  /// Bumped on every mutable_data() access. Lets derived-value caches
  /// (e.g. the tied-embedding transpose in Transformer::Logits) detect
  /// in-place weight updates — optimizer steps, checkpoint loads — without
  /// hashing the contents.
  uint64_t data_version = 0;
  bool requires_grad = false;
  /// Propagates this node's grad into its parents' grads.
  std::function<void()> backward_fn;
  /// Autograd graph edges (inputs that produced this tensor).
  std::vector<std::shared_ptr<TensorImpl>> parents;

  int64_t NumElements() const {
    int64_t n = 1;
    for (int d : shape) n *= d;
    return n;
  }

  void EnsureGrad() {
    if (grad.size() != data.size()) grad.assign(data.size(), 0.0f);
  }
};

/// Dense float32 tensor with reverse-mode automatic differentiation.
///
/// Value-semantic handle over shared storage: copying a Tensor aliases the
/// same buffer, mirroring the torch.Tensor model. Supports up to 4-D shapes,
/// which is all an encoder-decoder transformer needs ([B, H, Tq, Tk]
/// attention scores being the deepest case).
class Tensor {
 public:
  /// Null handle; `defined()` is false.
  Tensor() = default;

  /// Uninitialized (zero-filled) tensor of `shape`.
  explicit Tensor(std::vector<int> shape, bool requires_grad = false);

  /// Tensor with explicit contents; `data.size()` must match the shape.
  Tensor(std::vector<int> shape, std::vector<float> data,
         bool requires_grad = false);

  static Tensor Zeros(std::vector<int> shape, bool requires_grad = false);
  static Tensor Full(std::vector<int> shape, float value,
                     bool requires_grad = false);
  /// I.i.d. N(0, stddev^2) entries drawn from `rng`.
  static Tensor Randn(std::vector<int> shape, float stddev, Rng* rng,
                      bool requires_grad = false);
  /// Scalar (shape {1}) tensor.
  static Tensor Scalar(float value, bool requires_grad = false);

  bool defined() const { return impl_ != nullptr; }
  const std::vector<int>& shape() const { return impl_->shape; }
  int dim(int i) const;
  int ndim() const { return static_cast<int>(impl_->shape.size()); }
  int64_t NumElements() const { return impl_->NumElements(); }

  const std::vector<float>& data() const { return impl_->data; }
  std::vector<float>& mutable_data() {
    ++impl_->data_version;
    return impl_->data;
  }
  /// Current mutation counter; see TensorImpl::data_version.
  uint64_t data_version() const { return impl_->data_version; }
  const std::vector<float>& grad() const { return impl_->grad; }
  std::vector<float>& mutable_grad() {
    impl_->EnsureGrad();
    return impl_->grad;
  }

  float item() const {
    VIST5_CHECK_EQ(NumElements(), 1);
    return impl_->data[0];
  }

  bool requires_grad() const { return impl_->requires_grad; }
  void set_requires_grad(bool v) { impl_->requires_grad = v; }

  /// Runs reverse-mode autodiff from this (scalar) tensor through the
  /// recorded graph, accumulating into each reachable node's grad buffer.
  void Backward();

  /// Drops autograd history (parents + backward_fn) for the whole reachable
  /// graph, releasing intermediate activations.
  void DetachGraph();

  std::shared_ptr<TensorImpl>& impl() { return impl_; }
  const std::shared_ptr<TensorImpl>& impl() const { return impl_; }

  /// Debug string like "Tensor[2, 3]".
  std::string ShapeString() const;

 private:
  std::shared_ptr<TensorImpl> impl_;
};

/// RAII guard disabling autograd graph construction (inference mode).
/// Nested guards are supported.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

/// True when gradient recording is enabled (no NoGradGuard active).
bool GradEnabled();

/// Storage precision the inference weight matrices are read at.
/// kFloat32 is the training/default representation; kInt8 selects the
/// quantize-at-load path (per-output-channel symmetric int8,
/// docs/KERNELS.md) on layers that support it. Requested per decode via
/// GenerationOptions::weight_dtype.
enum class WeightDtype {
  kFloat32 = 0,
  kInt8 = 1,
};

/// "float32" / "int8".
const char* WeightDtypeName(WeightDtype dtype);

/// RAII guard selecting the weight dtype for the current thread's
/// inference ops (mirrors NoGradGuard). Layers consult
/// ActiveWeightDtype() inside Forward; training paths ignore it — the
/// int8 read path additionally requires grads to be disabled.
class WeightDtypeGuard {
 public:
  explicit WeightDtypeGuard(WeightDtype dtype);
  ~WeightDtypeGuard();
  WeightDtypeGuard(const WeightDtypeGuard&) = delete;
  WeightDtypeGuard& operator=(const WeightDtypeGuard&) = delete;

 private:
  WeightDtype previous_;
};

/// The weight dtype in effect on this thread (kFloat32 unless a
/// WeightDtypeGuard says otherwise).
WeightDtype ActiveWeightDtype();

}  // namespace vist5

#endif  // VIST5_TENSOR_TENSOR_H_
