#ifndef VIST5_TENSOR_OPS_H_
#define VIST5_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace vist5 {
namespace ops {

/// Chunk sizing for the rt::ParallelFor-parallelized kernels. Grains are
/// pure functions of the operand shape — never of the thread count — so the
/// chunk partition (and with it every chunk-indexed reduction) is identical
/// for 1 and N threads; see docs/PARALLELISM.md for the full determinism
/// contract. Exposed so tests can build shapes that straddle chunk
/// boundaries (M = grain, M = threads * grain + 1, ...).
int GemmRowGrain(int k, int n);  ///< output rows per chunk, GEMM-family ops
int RowOpGrain(int width);       ///< rows per chunk, softmax/norm/CE ops
inline constexpr int64_t kElemGrain = 1 << 13;  ///< elements per chunk

/// Elementwise sum of two same-shaped tensors.
Tensor Add(const Tensor& a, const Tensor& b);

/// `a + b` where b's shape is a suffix of a's shape; b is broadcast over the
/// leading dimensions. Covers bias adds ([*, d] + [d]) and T5 relative
/// position bias ([B, H, Tq, Tk] + [H, Tq, Tk]).
Tensor AddBroadcast(const Tensor& a, const Tensor& b);

/// Elementwise product of two same-shaped tensors.
Tensor Mul(const Tensor& a, const Tensor& b);

/// Multiplies every element by `s`.
Tensor Scale(const Tensor& a, float s);

/// Adds scalar `s` to every element.
Tensor AddScalar(const Tensor& a, float s);

/// Matrix product. Supports:
///  - [M, K] x [K, N]
///  - [..., M, K] x [K, N]       (leading dims folded into rows)
///  - [B..., M, K] x [B..., K, N] (batched, equal leading dims)
Tensor MatMul(const Tensor& a, const Tensor& b);

/// `a · b^T` over the last two dims. Supports the same shape combinations as
/// MatMul with b given as [N, K] / [B..., N, K]. Used for attention scores
/// (Q·K^T) and tied-embedding output projections.
Tensor MatMulTransposeB(const Tensor& a, const Tensor& b);

/// Softmax over the last dimension.
Tensor Softmax(const Tensor& x);

/// Single-query attention scores bounded by per-row valid key counts:
/// out[b, h, 0, j] = q[b, h, 0, :] · k[b, h, j, :] for j < valid[b], zero
/// beyond. Each dot runs through the same row kernel MatMulTransposeB
/// uses, so for j < valid[b] the bits match the unbounded product exactly —
/// the bound only skips keys a later mask would zero anyway. With
/// preallocated KV capacity (continuous batching) this cuts the per-step
/// key stream from capacity to the live prefix. Inference-only.
Tensor BoundedAttnScores(const Tensor& q, const Tensor& k,
                         const std::vector<int>& valid);

/// Single-query attention context bounded by per-row valid key counts:
/// out[b, h, 0, :] = sum_{j < valid[b]} probs[b, h, 0, j] * v[b, h, j, :].
/// Bit-compatible with MatMul against a cache whose time extent equals
/// valid[b] (the sequential decode path); the skipped tail contributes only
/// exact-zero terms. Inference-only.
Tensor BoundedAttnContext(const Tensor& probs, const Tensor& v,
                          const std::vector<int>& valid);

/// Softmax over the last dim of attention scores [B, H, Tq, Tk] with
/// padding and causal masking. Key positions >= key_lengths[b] receive zero
/// probability; if `causal`, key position k > query position q is masked.
/// `query_offset` shifts query indices (for incremental decoding).
Tensor MaskedSoftmax(const Tensor& scores, const std::vector<int>& key_lengths,
                     bool causal, int query_offset = 0);

/// T5-style RMS norm over the last dimension: x / rms(x) * weight.
Tensor RmsNorm(const Tensor& x, const Tensor& weight, float eps = 1e-6f);

/// Classic LayerNorm over the last dimension with learned gain and bias,
/// used by the vanilla-Transformer and BART baselines.
Tensor LayerNorm(const Tensor& x, const Tensor& gain, const Tensor& bias,
                 float eps = 1e-5f);

Tensor Sigmoid(const Tensor& x);
Tensor Tanh(const Tensor& x);

/// Transpose of a 2-D tensor.
Tensor Transpose2D(const Tensor& x);

Tensor Relu(const Tensor& x);

/// Tanh-approximation GELU.
Tensor Gelu(const Tensor& x);

/// Inverted dropout with keep-scale 1/(1-p); identity when grads are
/// disabled (inference) or p == 0.
Tensor Dropout(const Tensor& x, float p, Rng* rng);

/// Row gather: out[i, :] = table[ids[i], :]. Backward scatter-adds into the
/// table gradient.
Tensor Embedding(const Tensor& table, const std::vector<int>& ids);

/// Mean cross-entropy between `logits` [N, V] and integer `targets` (size
/// N). Rows whose target equals `ignore_index` contribute neither loss nor
/// gradient. Returns a scalar.
Tensor CrossEntropyLoss(const Tensor& logits, const std::vector<int>& targets,
                        int ignore_index = -100);

/// Copies into a tensor of `new_shape` (element count must match).
Tensor Reshape(const Tensor& x, std::vector<int> new_shape);

/// [B*T, H*Dh] -> [B, H, T, Dh] head split for attention.
Tensor SplitHeads(const Tensor& x, int batch, int seq, int heads);

/// [B, H, T, Dh] -> [B*T, H*Dh], inverse of SplitHeads.
Tensor MergeHeads(const Tensor& x);

/// Concatenates 2-D tensors [N_i, D] along dim 0.
Tensor ConcatRows(const std::vector<Tensor>& parts);

/// Appends `chunk` [B, H, S, Dh] to `cache` [B, H, T, Dh] along the time
/// dimension, returning [B, H, T+S, Dh]. An undefined `cache` acts as an
/// empty one. Inference-only (KV-cache building): must run under
/// NoGradGuard; no gradient flows through the result.
Tensor AppendTime(const Tensor& cache, const Tensor& chunk);

/// Selects slabs along dim 0: out[i, ...] = x[indices[i], ...]. Used to
/// reorder/expand per-beam KV caches after hypothesis pruning.
/// Inference-only: must run under NoGradGuard.
Tensor GatherBatch(const Tensor& x, const std::vector<int>& indices);

/// Writes `chunk` [B, H, 1, Dh] into `cache` [B, H, T, Dh] at per-row time
/// index `positions[b]`, growing the time dimension to
/// max(T, max(positions) + 1) with zero padding. The ragged-batch
/// counterpart of AppendTime: rows at different decode steps append into
/// one shared cache tensor (continuous batching, docs/SERVING.md). An
/// undefined `cache` acts as an empty one. Inference-only.
Tensor ScatterTime(const Tensor& cache, const Tensor& chunk,
                   const std::vector<int>& positions);

/// ScatterTime without the copy: writes `chunk` [B, H, 1, Dh] into `*cache`
/// at per-row time index `positions[b]`, mutating the tensor. Requires a
/// defined, uniquely-owned cache whose time dimension already covers every
/// position (the preallocated-capacity decode path; ContinuousDecoder sizes
/// caches to max_len up front so the per-step O(B*H*T*Dh) reallocation of
/// ScatterTime disappears). Inference-only.
void ScatterTimeInPlace(Tensor* cache, const Tensor& chunk,
                        const std::vector<int>& positions);

/// Zero-pads a [B, H, T, Dh] tensor along the time dimension to `t` >= T.
/// Inference-only (KV-cache merging).
Tensor PadTime(const Tensor& x, int t);

/// Keeps the first `t` <= T time entries of a [B, H, T, Dh] tensor.
/// Inference-only (KV-cache trimming after batch eviction).
Tensor SliceTime(const Tensor& x, int t);

/// Concatenates two [B_i, H, T, Dh] tensors along the batch dimension.
/// Inference-only (joining requests into a shared decode batch).
Tensor ConcatBatch(const Tensor& a, const Tensor& b);

/// Selects rows of a 2-D tensor: out[i, :] = x[rows[i], :]. Differentiable.
Tensor GatherRows(const Tensor& x, const std::vector<int>& rows);

/// Symmetric per-output-channel int8 quantization of a [K, N] weight
/// matrix (stored in the Linear layout: K = in features, N = out
/// features, so each scale covers one output channel — one row of the
/// logical [out, in] weight). Column j dequantizes as
/// float(data[p, j]) * scales[j]; zero-point is always 0.
struct QuantizedMatrix {
  int k = 0;                  ///< contraction (input) dimension
  int n = 0;                  ///< output dimension
  std::vector<int8_t> data;   ///< [k, n] row-major int8 codes
  std::vector<float> scales;  ///< [n] per-output-channel scales

  bool defined() const { return k > 0 && n > 0; }
  /// Bytes of weight traffic one full read of this matrix costs.
  int64_t WeightBytes() const {
    return static_cast<int64_t>(data.size()) +
           static_cast<int64_t>(scales.size() * sizeof(float));
  }
};

/// Quantizes a 2-D [K, N] float weight to int8 with per-column scales:
/// scale_j = max_p |w[p, j]| / 127, code = round-to-nearest(w / scale_j)
/// clamped to [-127, 127] (an all-zero column gets scale 0 and all-zero
/// codes). Round-to-nearest ties away from zero (std::lround semantics),
/// pinned so tests can reproduce the quantizer exactly.
QuantizedMatrix QuantizeWeights(const Tensor& w);

/// Materializes the float matrix a QuantizedMatrix represents:
/// out[p, j] = float(data[p, j]) * scales[j]. The quantize -> dequantize
/// round trip error per element is bounded by scales[j] / 2.
Tensor DequantizeWeights(const QuantizedMatrix& q);

/// `a` [.., K] times an int8-quantized weight [K, N] with per-column
/// scales: out[r, j] = scales[j] * sum_p a[r, p] * float(b[p, j]).
/// Leading dims of `a` fold into rows exactly like the unbatched MatMul.
/// Runs the same 8/4/1 shared-B row grouping and grain as MatMul, and the
/// accumulation is an fma chain over p ascending in every backend, so
/// results are bit-identical across scalar/AVX2 *and* across thread
/// counts and batch groupings (docs/KERNELS.md). Inference-only.
Tensor MatMulInt8(const Tensor& a, const QuantizedMatrix& b);

/// Sum of all elements as a scalar.
Tensor Sum(const Tensor& x);

}  // namespace ops
}  // namespace vist5

#endif  // VIST5_TENSOR_OPS_H_
