// Scalar reference backend for the GEMM row kernels (docs/KERNELS.md).
//
// This translation unit is compiled with strict IEEE flags — no fast-math,
// -ffp-contract=off, auto-vectorization disabled (see
// src/tensor/CMakeLists.txt) — so every loop below executes the literal
// source-order accumulation. That makes this backend the determinism
// *reference*: the AVX2 backend's NN kernels must reproduce these bits
// exactly (each output element is an explicit std::fma chain over p
// ascending, which vectorizing across j preserves), and its NT kernel must
// stay within the tolerance contract pinned in tests/determinism_test.cc.
//
// Every kernel computes whole output rows, so the parallel dispatch can
// block across rows while each row's accumulation order stays exactly the
// serial order — the determinism contract of docs/PARALLELISM.md: thread
// count changes which thread computes a row, never the arithmetic inside
// it.

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "tensor/simd.h"

namespace vist5 {
namespace tensor {
namespace simd {
namespace {

// One NB-wide column block of GemmRowNNZero: acc[j] accumulates over p
// ascending in registers, then stores.
//
// Every accumulation in the zero-init NN kernels is an explicit std::fma.
// The hard fma chain pins every output element to one rounding sequence,
// so the 1-row and multi-row kernels agree bit-for-bit and the
// incremental/batched/full decode paths stay interchangeable
// (docs/SERVING.md) — and the AVX2 backend, which runs the same chain
// eight columns at a time, matches them as well.
template <int NB>
inline int GemmRowNNBlock(const float* arow, const float* b, float* crow,
                          int k, int n, int j0) {
  for (; j0 + NB <= n; j0 += NB) {
    float acc[NB] = {};
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      const float* brow = b + static_cast<size_t>(p) * n + j0;
      for (int j = 0; j < NB; ++j) acc[j] = std::fma(av, brow[j], acc[j]);
    }
    for (int j = 0; j < NB; ++j) crow[j0 + j] = acc[j];
  }
  return j0;
}

// crow[N] = arow[K] * B[K,N] for a crow known to start zeroed (the forward
// MatMul output buffer). Register-blocked, which matters for the small
// row-at-a-time GEMMs of the batched decode step (docs/SERVING.md).
void GemmRowNNZero(const float* arow, const float* b, float* crow, int k,
                   int n) {
  int j0 = GemmRowNNBlock<32>(arow, b, crow, k, n, 0);
  j0 = GemmRowNNBlock<16>(arow, b, crow, k, n, j0);
  j0 = GemmRowNNBlock<8>(arow, b, crow, k, n, j0);
  for (; j0 < n; ++j0) {
    float acc = 0.0f;
    for (int p = 0; p < k; ++p) {
      acc = std::fma(arow[p], b[static_cast<size_t>(p) * n + j0], acc);
    }
    crow[j0] = acc;
  }
}

// Four-row x NB-column register tile of the zero-init NN product; the B
// block is loaded once per four output rows instead of once per row, which
// quarters the weight-matrix traffic of the batched decode step's
// row-panel GEMMs (FFN, logits, attention projections). Each acc element
// is the same std::fma chain over p ascending as the single-row kernels
// (see GemmRowNNBlock), so rows computed here match rows computed there
// bit-for-bit regardless of how the batch gets grouped.
//
// The accumulators are distinct named scalar arrays, not one acc[R][NB]
// 2D array: the named form is what GCC/Clang reliably keep in vector
// registers; the 2D-array form spills to the stack and costs ~5x on the
// decode-step panels.
template <int NB>
inline int Gemm4RowNNBlock(const float* a, const float* b, float* c, int k,
                           int n, int j0) {
  for (; j0 + NB <= n; j0 += NB) {
    float acc0[NB] = {}, acc1[NB] = {}, acc2[NB] = {}, acc3[NB] = {};
    for (int p = 0; p < k; ++p) {
      const float* brow = b + static_cast<size_t>(p) * n + j0;
      const float a0 = a[p];
      const float a1 = a[k + p];
      const float a2 = a[2 * k + p];
      const float a3 = a[3 * k + p];
      for (int j = 0; j < NB; ++j) {
        acc0[j] = std::fma(a0, brow[j], acc0[j]);
        acc1[j] = std::fma(a1, brow[j], acc1[j]);
        acc2[j] = std::fma(a2, brow[j], acc2[j]);
        acc3[j] = std::fma(a3, brow[j], acc3[j]);
      }
    }
    for (int j = 0; j < NB; ++j) {
      c[j0 + j] = acc0[j];
      c[n + j0 + j] = acc1[j];
      c[2 * n + j0 + j] = acc2[j];
      c[3 * n + j0 + j] = acc3[j];
    }
  }
  return j0;
}

// Four-row zero-init NN product (shared-B variant of GemmRowNNZero).
void Gemm4RowNNZero(const float* a, const float* b, float* c, int k, int n) {
  int j0 = Gemm4RowNNBlock<16>(a, b, c, k, n, 0);
  j0 = Gemm4RowNNBlock<8>(a, b, c, k, n, j0);
  for (int row = 0; row < 4 && j0 < n; ++row) {
    const float* arow = a + static_cast<size_t>(row) * k;
    float* crow = c + static_cast<size_t>(row) * n;
    for (int j = j0; j < n; ++j) {
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) {
        acc = std::fma(arow[p], b[static_cast<size_t>(p) * n + j], acc);
      }
      crow[j] = acc;
    }
  }
}

// Eight-row x NB-column register tile: one pass of the B block now feeds
// eight output rows, halving the weight traffic of the 4-row tile for
// full-width serve batches. Same pinned fma chain per element as every
// other NN kernel, so 1/4/8-row groupings all agree bit-for-bit.
template <int NB>
inline int Gemm8RowNNBlock(const float* a, const float* b, float* c, int k,
                           int n, int j0) {
  for (; j0 + NB <= n; j0 += NB) {
    float acc0[NB] = {}, acc1[NB] = {}, acc2[NB] = {}, acc3[NB] = {};
    float acc4[NB] = {}, acc5[NB] = {}, acc6[NB] = {}, acc7[NB] = {};
    for (int p = 0; p < k; ++p) {
      const float* brow = b + static_cast<size_t>(p) * n + j0;
      const float a0 = a[p];
      const float a1 = a[k + p];
      const float a2 = a[2 * k + p];
      const float a3 = a[3 * k + p];
      const float a4 = a[4 * k + p];
      const float a5 = a[5 * k + p];
      const float a6 = a[6 * k + p];
      const float a7 = a[7 * k + p];
      for (int j = 0; j < NB; ++j) {
        acc0[j] = std::fma(a0, brow[j], acc0[j]);
        acc1[j] = std::fma(a1, brow[j], acc1[j]);
        acc2[j] = std::fma(a2, brow[j], acc2[j]);
        acc3[j] = std::fma(a3, brow[j], acc3[j]);
        acc4[j] = std::fma(a4, brow[j], acc4[j]);
        acc5[j] = std::fma(a5, brow[j], acc5[j]);
        acc6[j] = std::fma(a6, brow[j], acc6[j]);
        acc7[j] = std::fma(a7, brow[j], acc7[j]);
      }
    }
    for (int j = 0; j < NB; ++j) {
      c[j0 + j] = acc0[j];
      c[n + j0 + j] = acc1[j];
      c[2 * n + j0 + j] = acc2[j];
      c[3 * n + j0 + j] = acc3[j];
      c[4 * n + j0 + j] = acc4[j];
      c[5 * n + j0 + j] = acc5[j];
      c[6 * n + j0 + j] = acc6[j];
      c[7 * n + j0 + j] = acc7[j];
    }
  }
  return j0;
}

// Eight-row zero-init NN product (shared-B variant of GemmRowNNZero).
void Gemm8RowNNZero(const float* a, const float* b, float* c, int k, int n) {
  int j0 = Gemm8RowNNBlock<16>(a, b, c, k, n, 0);
  j0 = Gemm8RowNNBlock<8>(a, b, c, k, n, j0);
  for (int row = 0; row < 8 && j0 < n; ++row) {
    const float* arow = a + static_cast<size_t>(row) * k;
    float* crow = c + static_cast<size_t>(row) * n;
    for (int j = j0; j < n; ++j) {
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) {
        acc = std::fma(arow[p], b[static_cast<size_t>(p) * n + j], acc);
      }
      crow[j] = acc;
    }
  }
}

// crow[N] += arow[K] * B[N,K]^T  (rows of B are the columns of the product)
//
// Deliberately one uniform loop body: giving the "same" dot product
// different bodies for different (n, m) would let the KV-cached decode
// paths — which call this with growing tk (sequential) vs preallocated tk
// (batched) — produce different bits for identical logical dots, breaking
// the serving parity contract (docs/SERVING.md). Keep every NT dot on this
// single body. Under this TU's strict flags the reduction is the exact
// left-to-right IEEE sum — the reference the AVX2 lane-split reduction is
// toleranced against (docs/KERNELS.md).
void GemmRowNT(const float* arow, const float* b, float* crow, int k, int n) {
  for (int j = 0; j < n; ++j) {
    const float* brow = b + static_cast<size_t>(j) * k;
    float acc = 0.0f;
    for (int p = 0; p < k; ++p) acc += arow[p] * brow[p];
    crow[j] += acc;
  }
}

// ---------------------------------------------------------------------------
// int8-weight kernels. B is int8 [K, N] with per-column symmetric scales;
// accumulation runs in float over the raw int8 values (exactly
// representable in float), and the scale multiplies once at store:
//   c[j] = scales[j] * sum_p fma(a[p], float(b[p, j])).
// The chain is the same explicit std::fma sequence as the float NN
// kernels, so the AVX2 int8 kernels (which widen int8 lanes to float and
// run the identical chain) are bit-exact against these.
// ---------------------------------------------------------------------------

template <int NB>
inline int GemmRowNNBlockI8(const float* arow, const int8_t* b,
                            const float* scales, float* crow, int k, int n,
                            int j0) {
  for (; j0 + NB <= n; j0 += NB) {
    float acc[NB] = {};
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      const int8_t* brow = b + static_cast<size_t>(p) * n + j0;
      for (int j = 0; j < NB; ++j) {
        acc[j] = std::fma(av, static_cast<float>(brow[j]), acc[j]);
      }
    }
    for (int j = 0; j < NB; ++j) crow[j0 + j] = acc[j] * scales[j0 + j];
  }
  return j0;
}

void GemmRowNNZeroI8(const float* arow, const int8_t* b, const float* scales,
                     float* crow, int k, int n) {
  int j0 = GemmRowNNBlockI8<16>(arow, b, scales, crow, k, n, 0);
  j0 = GemmRowNNBlockI8<8>(arow, b, scales, crow, k, n, j0);
  for (; j0 < n; ++j0) {
    float acc = 0.0f;
    for (int p = 0; p < k; ++p) {
      acc = std::fma(arow[p],
                     static_cast<float>(b[static_cast<size_t>(p) * n + j0]),
                     acc);
    }
    crow[j0] = acc * scales[j0];
  }
}

template <int NB>
inline int Gemm4RowNNBlockI8(const float* a, const int8_t* b,
                             const float* scales, float* c, int k, int n,
                             int j0) {
  for (; j0 + NB <= n; j0 += NB) {
    float acc0[NB] = {}, acc1[NB] = {}, acc2[NB] = {}, acc3[NB] = {};
    for (int p = 0; p < k; ++p) {
      const int8_t* brow = b + static_cast<size_t>(p) * n + j0;
      const float a0 = a[p];
      const float a1 = a[k + p];
      const float a2 = a[2 * k + p];
      const float a3 = a[3 * k + p];
      for (int j = 0; j < NB; ++j) {
        const float bv = static_cast<float>(brow[j]);
        acc0[j] = std::fma(a0, bv, acc0[j]);
        acc1[j] = std::fma(a1, bv, acc1[j]);
        acc2[j] = std::fma(a2, bv, acc2[j]);
        acc3[j] = std::fma(a3, bv, acc3[j]);
      }
    }
    for (int j = 0; j < NB; ++j) {
      const float s = scales[j0 + j];
      c[j0 + j] = acc0[j] * s;
      c[n + j0 + j] = acc1[j] * s;
      c[2 * n + j0 + j] = acc2[j] * s;
      c[3 * n + j0 + j] = acc3[j] * s;
    }
  }
  return j0;
}

void Gemm4RowNNZeroI8(const float* a, const int8_t* b, const float* scales,
                      float* c, int k, int n) {
  int j0 = Gemm4RowNNBlockI8<16>(a, b, scales, c, k, n, 0);
  j0 = Gemm4RowNNBlockI8<8>(a, b, scales, c, k, n, j0);
  for (int row = 0; row < 4 && j0 < n; ++row) {
    const float* arow = a + static_cast<size_t>(row) * k;
    float* crow = c + static_cast<size_t>(row) * n;
    for (int j = j0; j < n; ++j) {
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) {
        acc = std::fma(arow[p],
                       static_cast<float>(b[static_cast<size_t>(p) * n + j]),
                       acc);
      }
      crow[j] = acc * scales[j];
    }
  }
}

template <int NB>
inline int Gemm8RowNNBlockI8(const float* a, const int8_t* b,
                             const float* scales, float* c, int k, int n,
                             int j0) {
  for (; j0 + NB <= n; j0 += NB) {
    float acc0[NB] = {}, acc1[NB] = {}, acc2[NB] = {}, acc3[NB] = {};
    float acc4[NB] = {}, acc5[NB] = {}, acc6[NB] = {}, acc7[NB] = {};
    for (int p = 0; p < k; ++p) {
      const int8_t* brow = b + static_cast<size_t>(p) * n + j0;
      const float a0 = a[p];
      const float a1 = a[k + p];
      const float a2 = a[2 * k + p];
      const float a3 = a[3 * k + p];
      const float a4 = a[4 * k + p];
      const float a5 = a[5 * k + p];
      const float a6 = a[6 * k + p];
      const float a7 = a[7 * k + p];
      for (int j = 0; j < NB; ++j) {
        const float bv = static_cast<float>(brow[j]);
        acc0[j] = std::fma(a0, bv, acc0[j]);
        acc1[j] = std::fma(a1, bv, acc1[j]);
        acc2[j] = std::fma(a2, bv, acc2[j]);
        acc3[j] = std::fma(a3, bv, acc3[j]);
        acc4[j] = std::fma(a4, bv, acc4[j]);
        acc5[j] = std::fma(a5, bv, acc5[j]);
        acc6[j] = std::fma(a6, bv, acc6[j]);
        acc7[j] = std::fma(a7, bv, acc7[j]);
      }
    }
    for (int j = 0; j < NB; ++j) {
      const float s = scales[j0 + j];
      c[j0 + j] = acc0[j] * s;
      c[n + j0 + j] = acc1[j] * s;
      c[2 * n + j0 + j] = acc2[j] * s;
      c[3 * n + j0 + j] = acc3[j] * s;
      c[4 * n + j0 + j] = acc4[j] * s;
      c[5 * n + j0 + j] = acc5[j] * s;
      c[6 * n + j0 + j] = acc6[j] * s;
      c[7 * n + j0 + j] = acc7[j] * s;
    }
  }
  return j0;
}

void Gemm8RowNNZeroI8(const float* a, const int8_t* b, const float* scales,
                      float* c, int k, int n) {
  int j0 = Gemm8RowNNBlockI8<16>(a, b, scales, c, k, n, 0);
  j0 = Gemm8RowNNBlockI8<8>(a, b, scales, c, k, n, j0);
  for (int row = 0; row < 8 && j0 < n; ++row) {
    const float* arow = a + static_cast<size_t>(row) * k;
    float* crow = c + static_cast<size_t>(row) * n;
    for (int j = j0; j < n; ++j) {
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) {
        acc = std::fma(arow[p],
                       static_cast<float>(b[static_cast<size_t>(p) * n + j]),
                       acc);
      }
      crow[j] = acc * scales[j];
    }
  }
}

const KernelSet kScalarKernels = {
    /*name=*/"scalar",
    /*tile_width=*/8,
    &GemmRowNT,
    &GemmRowNNZero,
    &Gemm4RowNNZero,
    &Gemm8RowNNZero,
    &GemmRowNNZeroI8,
    &Gemm4RowNNZeroI8,
    &Gemm8RowNNZeroI8,
};

}  // namespace

namespace detail {
const KernelSet* ScalarKernelSet() { return &kScalarKernels; }
}  // namespace detail

}  // namespace simd
}  // namespace tensor
}  // namespace vist5
