// AVX2+FMA backend for the GEMM row kernels (docs/KERNELS.md).
//
// Compiled into every build via per-function target attributes — no
// -mavx2 global flag — and selected at runtime by CPUID dispatch
// (simd.cc), so one binary runs everywhere and picks the wide kernels
// only where they can execute.
//
// Parity model (pinned by tests/determinism_test.cc):
//  - NN kernels vectorize across *columns* while each output element keeps
//    the scalar backend's exact fma chain over p ascending, so their
//    results are BIT-IDENTICAL to the scalar reference.
//  - The NT dot product vectorizes across *k* (an 8-lane reduction plus a
//    fixed-shape horizontal sum), which reorders the additions; its
//    results carry a bounded rounding difference vs the scalar
//    left-to-right sum — the tolerance contract of docs/KERNELS.md.
//  - int8 kernels widen the int8 lanes to float (exact) and run the same
//    fma chain as the scalar int8 kernels: bit-identical.

#include "tensor/simd.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <cmath>
#include <cstddef>
#include <cstdint>

#define VIST5_AVX2 __attribute__((target("avx2,fma")))

namespace vist5 {
namespace tensor {
namespace simd {
namespace {

// Deterministic horizontal sum of one __m256: lane i adds to lane i+4,
// then the classic movehl/shuffle pairwise tree. Fixed shape, so the same
// k always reduces in the same order.
VIST5_AVX2 inline float HSum(__m256 v) {
  __m128 s = _mm_add_ps(_mm256_castps256_ps128(v),
                        _mm256_extractf128_ps(v, 1));
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x1));
  return _mm_cvtss_f32(s);
}

// crow[N] += arow[K] · B[N,K]^T. Eight k-lanes accumulate in parallel per
// output column, then reduce; the scalar remainder accumulates separately
// and joins at the end. Single uniform body for every (k, n) — the same
// "one reduction shape per dot" rule the scalar backend follows, so
// growing-tk (sequential) and preallocated-tk (batched) decode paths see
// identical bits *within* this backend (docs/SERVING.md).
VIST5_AVX2 void GemmRowNT(const float* arow, const float* b, float* crow,
                          int k, int n) {
  for (int j = 0; j < n; ++j) {
    const float* brow = b + static_cast<size_t>(j) * k;
    __m256 acc = _mm256_setzero_ps();
    int p = 0;
    for (; p + 8 <= k; p += 8) {
      acc = _mm256_fmadd_ps(_mm256_loadu_ps(arow + p),
                            _mm256_loadu_ps(brow + p), acc);
    }
    float tail = 0.0f;
    for (; p < k; ++p) tail += arow[p] * brow[p];
    crow[j] += HSum(acc) + tail;
  }
}

// crow[N] = arow[K] · B[K,N], vectorized across eight columns: each lane
// is the scalar kernels' exact std::fma chain over p ascending, so the
// result is bit-identical to the scalar backend.
VIST5_AVX2 void GemmRowNNZero(const float* arow, const float* b, float* crow,
                              int k, int n) {
  int j0 = 0;
  for (; j0 + 8 <= n; j0 += 8) {
    __m256 acc = _mm256_setzero_ps();
    for (int p = 0; p < k; ++p) {
      acc = _mm256_fmadd_ps(
          _mm256_set1_ps(arow[p]),
          _mm256_loadu_ps(b + static_cast<size_t>(p) * n + j0), acc);
    }
    _mm256_storeu_ps(crow + j0, acc);
  }
  for (; j0 < n; ++j0) {
    float acc = 0.0f;
    for (int p = 0; p < k; ++p) {
      acc = std::fma(arow[p], b[static_cast<size_t>(p) * n + j0], acc);
    }
    crow[j0] = acc;
  }
}

// c[4,N] = a[4,K] · B[K,N] with one B load per four output rows.
VIST5_AVX2 void Gemm4RowNNZero(const float* a, const float* b, float* c,
                               int k, int n) {
  int j0 = 0;
  for (; j0 + 8 <= n; j0 += 8) {
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    __m256 acc2 = _mm256_setzero_ps();
    __m256 acc3 = _mm256_setzero_ps();
    for (int p = 0; p < k; ++p) {
      const __m256 bv =
          _mm256_loadu_ps(b + static_cast<size_t>(p) * n + j0);
      acc0 = _mm256_fmadd_ps(_mm256_set1_ps(a[p]), bv, acc0);
      acc1 = _mm256_fmadd_ps(_mm256_set1_ps(a[k + p]), bv, acc1);
      acc2 = _mm256_fmadd_ps(_mm256_set1_ps(a[2 * k + p]), bv, acc2);
      acc3 = _mm256_fmadd_ps(_mm256_set1_ps(a[3 * k + p]), bv, acc3);
    }
    _mm256_storeu_ps(c + j0, acc0);
    _mm256_storeu_ps(c + n + j0, acc1);
    _mm256_storeu_ps(c + 2 * n + j0, acc2);
    _mm256_storeu_ps(c + 3 * n + j0, acc3);
  }
  for (int row = 0; row < 4 && j0 < n; ++row) {
    const float* arow = a + static_cast<size_t>(row) * k;
    float* crow = c + static_cast<size_t>(row) * n;
    for (int j = j0; j < n; ++j) {
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) {
        acc = std::fma(arow[p], b[static_cast<size_t>(p) * n + j], acc);
      }
      crow[j] = acc;
    }
  }
}

// c[8,N] = a[8,K] · B[K,N] with one B load per eight output rows.
VIST5_AVX2 void Gemm8RowNNZero(const float* a, const float* b, float* c,
                               int k, int n) {
  int j0 = 0;
  for (; j0 + 8 <= n; j0 += 8) {
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    __m256 acc2 = _mm256_setzero_ps();
    __m256 acc3 = _mm256_setzero_ps();
    __m256 acc4 = _mm256_setzero_ps();
    __m256 acc5 = _mm256_setzero_ps();
    __m256 acc6 = _mm256_setzero_ps();
    __m256 acc7 = _mm256_setzero_ps();
    for (int p = 0; p < k; ++p) {
      const __m256 bv =
          _mm256_loadu_ps(b + static_cast<size_t>(p) * n + j0);
      acc0 = _mm256_fmadd_ps(_mm256_set1_ps(a[p]), bv, acc0);
      acc1 = _mm256_fmadd_ps(_mm256_set1_ps(a[k + p]), bv, acc1);
      acc2 = _mm256_fmadd_ps(_mm256_set1_ps(a[2 * k + p]), bv, acc2);
      acc3 = _mm256_fmadd_ps(_mm256_set1_ps(a[3 * k + p]), bv, acc3);
      acc4 = _mm256_fmadd_ps(_mm256_set1_ps(a[4 * k + p]), bv, acc4);
      acc5 = _mm256_fmadd_ps(_mm256_set1_ps(a[5 * k + p]), bv, acc5);
      acc6 = _mm256_fmadd_ps(_mm256_set1_ps(a[6 * k + p]), bv, acc6);
      acc7 = _mm256_fmadd_ps(_mm256_set1_ps(a[7 * k + p]), bv, acc7);
    }
    _mm256_storeu_ps(c + j0, acc0);
    _mm256_storeu_ps(c + n + j0, acc1);
    _mm256_storeu_ps(c + 2 * n + j0, acc2);
    _mm256_storeu_ps(c + 3 * n + j0, acc3);
    _mm256_storeu_ps(c + 4 * n + j0, acc4);
    _mm256_storeu_ps(c + 5 * n + j0, acc5);
    _mm256_storeu_ps(c + 6 * n + j0, acc6);
    _mm256_storeu_ps(c + 7 * n + j0, acc7);
  }
  for (int row = 0; row < 8 && j0 < n; ++row) {
    const float* arow = a + static_cast<size_t>(row) * k;
    float* crow = c + static_cast<size_t>(row) * n;
    for (int j = j0; j < n; ++j) {
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) {
        acc = std::fma(arow[p], b[static_cast<size_t>(p) * n + j], acc);
      }
      crow[j] = acc;
    }
  }
}

// Widens eight consecutive int8 weights to a float vector. The int8 range
// [-127, 127] converts exactly, so lane values equal the scalar kernels'
// static_cast<float>(int8).
VIST5_AVX2 inline __m256 LoadI8AsFloat(const int8_t* p) {
  const __m128i raw = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p));
  return _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(raw));
}

VIST5_AVX2 void GemmRowNNZeroI8(const float* arow, const int8_t* b,
                                const float* scales, float* crow, int k,
                                int n) {
  int j0 = 0;
  for (; j0 + 8 <= n; j0 += 8) {
    __m256 acc = _mm256_setzero_ps();
    for (int p = 0; p < k; ++p) {
      acc = _mm256_fmadd_ps(
          _mm256_set1_ps(arow[p]),
          LoadI8AsFloat(b + static_cast<size_t>(p) * n + j0), acc);
    }
    _mm256_storeu_ps(crow + j0,
                     _mm256_mul_ps(acc, _mm256_loadu_ps(scales + j0)));
  }
  for (; j0 < n; ++j0) {
    float acc = 0.0f;
    for (int p = 0; p < k; ++p) {
      acc = std::fma(arow[p],
                     static_cast<float>(b[static_cast<size_t>(p) * n + j0]),
                     acc);
    }
    crow[j0] = acc * scales[j0];
  }
}

VIST5_AVX2 void Gemm4RowNNZeroI8(const float* a, const int8_t* b,
                                 const float* scales, float* c, int k,
                                 int n) {
  int j0 = 0;
  for (; j0 + 8 <= n; j0 += 8) {
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    __m256 acc2 = _mm256_setzero_ps();
    __m256 acc3 = _mm256_setzero_ps();
    for (int p = 0; p < k; ++p) {
      const __m256 bv = LoadI8AsFloat(b + static_cast<size_t>(p) * n + j0);
      acc0 = _mm256_fmadd_ps(_mm256_set1_ps(a[p]), bv, acc0);
      acc1 = _mm256_fmadd_ps(_mm256_set1_ps(a[k + p]), bv, acc1);
      acc2 = _mm256_fmadd_ps(_mm256_set1_ps(a[2 * k + p]), bv, acc2);
      acc3 = _mm256_fmadd_ps(_mm256_set1_ps(a[3 * k + p]), bv, acc3);
    }
    const __m256 sv = _mm256_loadu_ps(scales + j0);
    _mm256_storeu_ps(c + j0, _mm256_mul_ps(acc0, sv));
    _mm256_storeu_ps(c + n + j0, _mm256_mul_ps(acc1, sv));
    _mm256_storeu_ps(c + 2 * n + j0, _mm256_mul_ps(acc2, sv));
    _mm256_storeu_ps(c + 3 * n + j0, _mm256_mul_ps(acc3, sv));
  }
  for (int row = 0; row < 4 && j0 < n; ++row) {
    const float* arow = a + static_cast<size_t>(row) * k;
    float* crow = c + static_cast<size_t>(row) * n;
    for (int j = j0; j < n; ++j) {
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) {
        acc = std::fma(arow[p],
                       static_cast<float>(b[static_cast<size_t>(p) * n + j]),
                       acc);
      }
      crow[j] = acc * scales[j];
    }
  }
}

VIST5_AVX2 void Gemm8RowNNZeroI8(const float* a, const int8_t* b,
                                 const float* scales, float* c, int k,
                                 int n) {
  int j0 = 0;
  for (; j0 + 8 <= n; j0 += 8) {
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    __m256 acc2 = _mm256_setzero_ps();
    __m256 acc3 = _mm256_setzero_ps();
    __m256 acc4 = _mm256_setzero_ps();
    __m256 acc5 = _mm256_setzero_ps();
    __m256 acc6 = _mm256_setzero_ps();
    __m256 acc7 = _mm256_setzero_ps();
    for (int p = 0; p < k; ++p) {
      const __m256 bv = LoadI8AsFloat(b + static_cast<size_t>(p) * n + j0);
      acc0 = _mm256_fmadd_ps(_mm256_set1_ps(a[p]), bv, acc0);
      acc1 = _mm256_fmadd_ps(_mm256_set1_ps(a[k + p]), bv, acc1);
      acc2 = _mm256_fmadd_ps(_mm256_set1_ps(a[2 * k + p]), bv, acc2);
      acc3 = _mm256_fmadd_ps(_mm256_set1_ps(a[3 * k + p]), bv, acc3);
      acc4 = _mm256_fmadd_ps(_mm256_set1_ps(a[4 * k + p]), bv, acc4);
      acc5 = _mm256_fmadd_ps(_mm256_set1_ps(a[5 * k + p]), bv, acc5);
      acc6 = _mm256_fmadd_ps(_mm256_set1_ps(a[6 * k + p]), bv, acc6);
      acc7 = _mm256_fmadd_ps(_mm256_set1_ps(a[7 * k + p]), bv, acc7);
    }
    const __m256 sv = _mm256_loadu_ps(scales + j0);
    _mm256_storeu_ps(c + j0, _mm256_mul_ps(acc0, sv));
    _mm256_storeu_ps(c + n + j0, _mm256_mul_ps(acc1, sv));
    _mm256_storeu_ps(c + 2 * n + j0, _mm256_mul_ps(acc2, sv));
    _mm256_storeu_ps(c + 3 * n + j0, _mm256_mul_ps(acc3, sv));
    _mm256_storeu_ps(c + 4 * n + j0, _mm256_mul_ps(acc4, sv));
    _mm256_storeu_ps(c + 5 * n + j0, _mm256_mul_ps(acc5, sv));
    _mm256_storeu_ps(c + 6 * n + j0, _mm256_mul_ps(acc6, sv));
    _mm256_storeu_ps(c + 7 * n + j0, _mm256_mul_ps(acc7, sv));
  }
  for (int row = 0; row < 8 && j0 < n; ++row) {
    const float* arow = a + static_cast<size_t>(row) * k;
    float* crow = c + static_cast<size_t>(row) * n;
    for (int j = j0; j < n; ++j) {
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) {
        acc = std::fma(arow[p],
                       static_cast<float>(b[static_cast<size_t>(p) * n + j]),
                       acc);
      }
      crow[j] = acc * scales[j];
    }
  }
}

const KernelSet kAvx2Kernels = {
    /*name=*/"avx2",
    /*tile_width=*/8,
    &GemmRowNT,
    &GemmRowNNZero,
    &Gemm4RowNNZero,
    &Gemm8RowNNZero,
    &GemmRowNNZeroI8,
    &Gemm4RowNNZeroI8,
    &Gemm8RowNNZeroI8,
};

}  // namespace

namespace detail {
const KernelSet* Avx2KernelSet() { return &kAvx2Kernels; }
}  // namespace detail

}  // namespace simd
}  // namespace tensor
}  // namespace vist5

#else  // !x86

namespace vist5 {
namespace tensor {
namespace simd {
namespace detail {
const KernelSet* Avx2KernelSet() { return nullptr; }
}  // namespace detail
}  // namespace simd
}  // namespace tensor
}  // namespace vist5

#endif
