#include "tensor/tensor.h"

#include <algorithm>
#include <unordered_set>

namespace vist5 {

namespace {
thread_local bool g_grad_enabled = true;
thread_local WeightDtype g_weight_dtype = WeightDtype::kFloat32;
}  // namespace

bool GradEnabled() { return g_grad_enabled; }

NoGradGuard::NoGradGuard() : previous_(g_grad_enabled) {
  g_grad_enabled = false;
}
NoGradGuard::~NoGradGuard() { g_grad_enabled = previous_; }

WeightDtype ActiveWeightDtype() { return g_weight_dtype; }

const char* WeightDtypeName(WeightDtype dtype) {
  return dtype == WeightDtype::kInt8 ? "int8" : "float32";
}

WeightDtypeGuard::WeightDtypeGuard(WeightDtype dtype)
    : previous_(g_weight_dtype) {
  g_weight_dtype = dtype;
}
WeightDtypeGuard::~WeightDtypeGuard() { g_weight_dtype = previous_; }

Tensor::Tensor(std::vector<int> shape, bool requires_grad) {
  impl_ = std::make_shared<TensorImpl>();
  impl_->shape = std::move(shape);
  impl_->data.assign(static_cast<size_t>(impl_->NumElements()), 0.0f);
  impl_->requires_grad = requires_grad;
}

Tensor::Tensor(std::vector<int> shape, std::vector<float> data,
               bool requires_grad) {
  impl_ = std::make_shared<TensorImpl>();
  impl_->shape = std::move(shape);
  impl_->data = std::move(data);
  VIST5_CHECK_EQ(static_cast<int64_t>(impl_->data.size()),
                 impl_->NumElements());
  impl_->requires_grad = requires_grad;
}

Tensor Tensor::Zeros(std::vector<int> shape, bool requires_grad) {
  return Tensor(std::move(shape), requires_grad);
}

Tensor Tensor::Full(std::vector<int> shape, float value, bool requires_grad) {
  Tensor t(std::move(shape), requires_grad);
  std::fill(t.mutable_data().begin(), t.mutable_data().end(), value);
  return t;
}

Tensor Tensor::Randn(std::vector<int> shape, float stddev, Rng* rng,
                     bool requires_grad) {
  Tensor t(std::move(shape), requires_grad);
  for (float& x : t.mutable_data()) x = rng->Normal() * stddev;
  return t;
}

Tensor Tensor::Scalar(float value, bool requires_grad) {
  return Tensor({1}, {value}, requires_grad);
}

int Tensor::dim(int i) const {
  if (i < 0) i += ndim();
  VIST5_CHECK_GE(i, 0);
  VIST5_CHECK_LT(i, ndim());
  return impl_->shape[static_cast<size_t>(i)];
}

std::string Tensor::ShapeString() const {
  std::string out = "Tensor[";
  for (int i = 0; i < ndim(); ++i) {
    if (i) out += ", ";
    out += std::to_string(impl_->shape[static_cast<size_t>(i)]);
  }
  out += "]";
  return out;
}

namespace {

// Builds a reverse topological order of the autograd graph rooted at `root`
// (children before parents) using an iterative DFS.
void TopoSort(const std::shared_ptr<TensorImpl>& root,
              std::vector<TensorImpl*>* order) {
  std::unordered_set<TensorImpl*> visited;
  struct Frame {
    TensorImpl* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  if (visited.insert(root.get()).second) stack.push_back({root.get(), 0});
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next_parent < top.node->parents.size()) {
      TensorImpl* parent = top.node->parents[top.next_parent++].get();
      if (visited.insert(parent).second) stack.push_back({parent, 0});
    } else {
      order->push_back(top.node);
      stack.pop_back();
    }
  }
}

}  // namespace

void Tensor::Backward() {
  VIST5_CHECK(defined());
  VIST5_CHECK_EQ(NumElements(), 1);
  std::vector<TensorImpl*> order;
  TopoSort(impl_, &order);
  impl_->EnsureGrad();
  impl_->grad[0] = 1.0f;
  // order is children-last; iterate in reverse so each node's grad is
  // complete before it propagates to parents.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    TensorImpl* node = *it;
    if (node->backward_fn && !node->grad.empty()) node->backward_fn();
  }
}

void Tensor::DetachGraph() {
  if (!defined()) return;
  std::vector<TensorImpl*> order;
  TopoSort(impl_, &order);
  for (TensorImpl* node : order) {
    node->backward_fn = nullptr;
    node->parents.clear();
  }
}

}  // namespace vist5
