#include "tensor/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "util/logging.h"

namespace vist5 {
namespace tensor {
namespace simd {
namespace {

std::atomic<const KernelSet*> g_kernels{nullptr};

/// Resolves the startup backend: VIST5_ISA wins when set and runnable,
/// otherwise the best supported backend. Called once (racing first calls
/// all compute the same answer, so the benign double-store is harmless).
const KernelSet* ResolveDefault() {
  const char* env = std::getenv("VIST5_ISA");
  if (env != nullptr && *env != '\0') {
    if (std::strcmp(env, "scalar") == 0) {
      return detail::ScalarKernelSet();
    }
    if (std::strcmp(env, "avx2") == 0) {
      if (CpuSupportsAvx2()) return detail::Avx2KernelSet();
      VIST5_LOG(Warning) << "VIST5_ISA=avx2 requested but this CPU lacks "
                            "AVX2+FMA; falling back to the scalar backend";
      return detail::ScalarKernelSet();
    }
    VIST5_LOG(Warning) << "unknown VIST5_ISA value \"" << env
                       << "\" (expected \"scalar\" or \"avx2\"); using the "
                          "default backend";
  }
  return CpuSupportsAvx2() ? detail::Avx2KernelSet()
                           : detail::ScalarKernelSet();
}

}  // namespace

bool CpuSupportsAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  return detail::Avx2KernelSet() != nullptr &&
         __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

const KernelSet& ActiveKernels() {
  const KernelSet* k = g_kernels.load(std::memory_order_acquire);
  if (k == nullptr) {
    k = ResolveDefault();
    g_kernels.store(k, std::memory_order_release);
  }
  return *k;
}

Isa ActiveIsa() {
  return &ActiveKernels() == detail::ScalarKernelSet() ? Isa::kScalar
                                                       : Isa::kAvx2;
}

bool SetIsa(Isa isa) {
  const KernelSet* k = nullptr;
  switch (isa) {
    case Isa::kScalar:
      k = detail::ScalarKernelSet();
      break;
    case Isa::kAvx2:
      if (!CpuSupportsAvx2()) return false;
      k = detail::Avx2KernelSet();
      break;
  }
  if (k == nullptr) return false;
  g_kernels.store(k, std::memory_order_release);
  return true;
}

const char* IsaName(Isa isa) {
  return isa == Isa::kScalar ? "scalar" : "avx2";
}

}  // namespace simd
}  // namespace tensor
}  // namespace vist5
