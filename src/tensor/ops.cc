#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "rt/thread_pool.h"
#include "tensor/simd.h"

namespace vist5 {
namespace ops {
namespace {

// ---------------------------------------------------------------------------
// Backward-only GEMM row kernels. Both accumulate into C.
//
// The forward-path kernels (zero-init NN tiles, the NT dot) live in the
// runtime-dispatched tensor::simd backends (docs/KERNELS.md); these two
// stay here because they only run during training, where the gradient
// accumulation order — not raw kernel speed — is the binding constraint.
//
// Every kernel computes ONE output row, so the parallel dispatch can block
// across rows while each row's accumulation order stays exactly the serial
// order — the determinism contract of docs/PARALLELISM.md: thread count
// changes which thread computes a row, never the arithmetic inside it.
// ---------------------------------------------------------------------------

// crow[N] += arow[K] * B[K,N]
inline void GemmRowNN(const float* arow, const float* b, float* crow, int k,
                      int n) {
  for (int p = 0; p < k; ++p) {
    const float av = arow[p];
    const float* brow = b + static_cast<size_t>(p) * n;
    for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
  }
}

// crow[Q] += column `a` of X[M,P] dotted into Y[M,Q]: the row-`a` slice of
// C[P,Q] += X^T * Y. Accumulates over i ascending — the same per-element
// order as the classic i-outer GemmTN loop nest.
inline void GemmRowTN(const float* x, const float* y, float* crow, int m,
                      int p, int q, int a) {
  for (int i = 0; i < m; ++i) {
    const float xv = x[static_cast<size_t>(i) * p + a];
    const float* yrow = y + static_cast<size_t>(i) * q;
    for (int b = 0; b < q; ++b) crow[b] += xv * yrow[b];
  }
}

// ---------------------------------------------------------------------------
// Node construction helpers.
// ---------------------------------------------------------------------------

bool TracksGrad(const Tensor& t) {
  return GradEnabled() && t.requires_grad();
}

Tensor MakeResult(std::vector<int> shape, std::vector<float> data,
                  std::vector<Tensor> parents,
                  std::function<void()> backward_fn) {
  bool any_grad = false;
  for (const Tensor& p : parents) any_grad = any_grad || TracksGrad(p);
  Tensor out(std::move(shape), std::move(data), any_grad);
  if (any_grad) {
    for (const Tensor& p : parents) out.impl()->parents.push_back(p.impl());
    out.impl()->backward_fn = std::move(backward_fn);
  }
  return out;
}

int64_t Prod(const std::vector<int>& dims, size_t begin, size_t end) {
  int64_t p = 1;
  for (size_t i = begin; i < end; ++i) p *= dims[i];
  return p;
}

// Runs f(i) for every i in [0, n), split into kElemGrain chunks. Only for
// bodies whose writes are disjoint per index.
template <typename F>
void ParallelElems(int64_t n, F&& f) {
  rt::ParallelFor(kElemGrain, 0, n, [&f](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) f(i);
  });
}

}  // namespace

int GemmRowGrain(int k, int n) {
  // ~32k multiply-adds per chunk: coarse enough to amortize dispatch, fine
  // enough that attention-sized GEMMs still split across the pool. Floored
  // at the dispatched backend's shared-B tile width so the widest
  // multi-row kernel (Gemm8RowNNZero) can engage on batched decode-step
  // row panels — a smaller grain would cap every run below the tile and
  // silently disable the weight-reuse path that carries the serve
  // throughput contract (docs/SERVING.md). Deriving the floor from the
  // *dispatched* KernelSet (rather than a literal 8) keeps the row-space
  // partition identical across backends that share a tile width, which
  // the per-ISA any-thread-count contract depends on (docs/KERNELS.md).
  const int tile = tensor::simd::ActiveKernels().tile_width;
  const int64_t row_flops = std::max<int64_t>(1, static_cast<int64_t>(k) * n);
  return static_cast<int>(std::max<int64_t>(tile, 32768 / row_flops));
}

int RowOpGrain(int width) {
  // ~1k elements per chunk for row ops (softmax, norms, cross-entropy).
  return static_cast<int>(
      std::max<int64_t>(1, 1024 / std::max(1, width)));
}

Tensor Add(const Tensor& a, const Tensor& b) {
  VIST5_CHECK(a.shape() == b.shape()) << a.ShapeString() << " vs "
                                      << b.ShapeString();
  std::vector<float> out(a.data().size());
  ParallelElems(static_cast<int64_t>(out.size()),
                [&](int64_t i) { out[i] = a.data()[i] + b.data()[i]; });
  auto ai = a.impl();
  auto bi = b.impl();
  Tensor result = MakeResult(a.shape(), std::move(out), {a, b}, nullptr);
  if (result.requires_grad()) {
    auto ri = result.impl();
    result.impl()->backward_fn = [ai, bi, ri]() {
      if (ai->requires_grad) {
        ai->EnsureGrad();
        ParallelElems(static_cast<int64_t>(ri->grad.size()),
                      [&](int64_t i) { ai->grad[i] += ri->grad[i]; });
      }
      if (bi->requires_grad) {
        bi->EnsureGrad();
        ParallelElems(static_cast<int64_t>(ri->grad.size()),
                      [&](int64_t i) { bi->grad[i] += ri->grad[i]; });
      }
    };
  }
  return result;
}

Tensor AddBroadcast(const Tensor& a, const Tensor& b) {
  const auto& as = a.shape();
  const auto& bs = b.shape();
  VIST5_CHECK_LE(bs.size(), as.size());
  for (size_t i = 0; i < bs.size(); ++i) {
    VIST5_CHECK_EQ(bs[bs.size() - 1 - i], as[as.size() - 1 - i]);
  }
  const int64_t inner = Prod(bs, 0, bs.size());
  const int64_t outer = a.NumElements() / inner;
  std::vector<float> out(a.data().size());
  ParallelElems(a.NumElements(), [&](int64_t idx) {
    out[idx] = a.data()[idx] + b.data()[idx % inner];
  });
  auto ai = a.impl();
  auto bi = b.impl();
  Tensor result = MakeResult(a.shape(), std::move(out), {a, b}, nullptr);
  if (result.requires_grad()) {
    auto ri = result.impl();
    result.impl()->backward_fn = [ai, bi, ri, outer, inner]() {
      if (ai->requires_grad) {
        ai->EnsureGrad();
        ParallelElems(static_cast<int64_t>(ri->grad.size()),
                      [&](int64_t i) { ai->grad[i] += ri->grad[i]; });
      }
      if (bi->requires_grad) {
        bi->EnsureGrad();
        // Parallel over the broadcast (inner) index: each thread owns one
        // dB element and folds the outer dim o-ascending, matching the
        // serial o-outer loop's per-element accumulation order.
        rt::ParallelFor(kElemGrain, 0, inner, [&](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) {
            float acc = 0.0f;
            for (int64_t o = 0; o < outer; ++o)
              acc += ri->grad[o * inner + i];
            bi->grad[i] += acc;
          }
        });
      }
    };
  }
  return result;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  VIST5_CHECK(a.shape() == b.shape());
  std::vector<float> out(a.data().size());
  ParallelElems(static_cast<int64_t>(out.size()),
                [&](int64_t i) { out[i] = a.data()[i] * b.data()[i]; });
  auto ai = a.impl();
  auto bi = b.impl();
  Tensor result = MakeResult(a.shape(), std::move(out), {a, b}, nullptr);
  if (result.requires_grad()) {
    auto ri = result.impl();
    result.impl()->backward_fn = [ai, bi, ri]() {
      if (ai->requires_grad) {
        ai->EnsureGrad();
        ParallelElems(static_cast<int64_t>(ri->grad.size()), [&](int64_t i) {
          ai->grad[i] += ri->grad[i] * bi->data[i];
        });
      }
      if (bi->requires_grad) {
        bi->EnsureGrad();
        ParallelElems(static_cast<int64_t>(ri->grad.size()), [&](int64_t i) {
          bi->grad[i] += ri->grad[i] * ai->data[i];
        });
      }
    };
  }
  return result;
}

Tensor Scale(const Tensor& a, float s) {
  std::vector<float> out(a.data().size());
  ParallelElems(static_cast<int64_t>(out.size()),
                [&](int64_t i) { out[i] = a.data()[i] * s; });
  auto ai = a.impl();
  Tensor result = MakeResult(a.shape(), std::move(out), {a}, nullptr);
  if (result.requires_grad()) {
    auto ri = result.impl();
    result.impl()->backward_fn = [ai, ri, s]() {
      ai->EnsureGrad();
      ParallelElems(static_cast<int64_t>(ri->grad.size()),
                    [&](int64_t i) { ai->grad[i] += ri->grad[i] * s; });
    };
  }
  return result;
}

Tensor AddScalar(const Tensor& a, float s) {
  std::vector<float> out(a.data().size());
  ParallelElems(static_cast<int64_t>(out.size()),
                [&](int64_t i) { out[i] = a.data()[i] + s; });
  auto ai = a.impl();
  Tensor result = MakeResult(a.shape(), std::move(out), {a}, nullptr);
  if (result.requires_grad()) {
    auto ri = result.impl();
    result.impl()->backward_fn = [ai, ri]() {
      ai->EnsureGrad();
      ParallelElems(static_cast<int64_t>(ri->grad.size()),
                    [&](int64_t i) { ai->grad[i] += ri->grad[i]; });
    };
  }
  return result;
}

namespace {

// Shared implementation for MatMul / MatMulTransposeB. `transpose_b` selects
// whether b is [*, K, N] (false) or [*, N, K] (true).
Tensor MatMulImpl(const Tensor& a, const Tensor& b, bool transpose_b) {
  const auto& as = a.shape();
  const auto& bs = b.shape();
  VIST5_CHECK_GE(as.size(), 2u);
  VIST5_CHECK_GE(bs.size(), 2u);
  const int k = as.back();
  int n;
  if (transpose_b) {
    VIST5_CHECK_EQ(bs.back(), k);
    n = bs[bs.size() - 2];
  } else {
    VIST5_CHECK_EQ(bs[bs.size() - 2], k);
    n = bs.back();
  }

  const bool batched = bs.size() > 2;
  int64_t batch = 1;
  int m;
  if (batched) {
    VIST5_CHECK_EQ(as.size(), bs.size());
    for (size_t i = 0; i + 2 < as.size(); ++i) VIST5_CHECK_EQ(as[i], bs[i]);
    batch = Prod(as, 0, as.size() - 2);
    m = as[as.size() - 2];
  } else {
    // Fold every leading dim of `a` into rows. Computed from the shape, not
    // as NumElements()/k: a degenerate K=0 operand ([M, 0] x [0, N]) has
    // zero elements and would otherwise divide by zero.
    batch = 1;
    m = static_cast<int>(Prod(as, 0, as.size() - 1));
  }

  std::vector<int> out_shape = as;
  out_shape.back() = n;
  std::vector<float> out(static_cast<size_t>(batch) * m * n, 0.0f);

  if (!GradEnabled() && bs.size() == 2) {
    // Weight-traffic accounting for inference GEMMs against a shared 2-D
    // operand (the weight-matrix shape); the int8 path mirrors this with
    // gemm/weight_bytes_i8 so benches can report bytes-per-token.
    static obs::Counter* weight_bytes =
        obs::GetCounter("gemm/weight_bytes_f32");
    weight_bytes->Add(static_cast<int64_t>(k) * n *
                      static_cast<int64_t>(sizeof(float)));
  }

  const int64_t a_stride = static_cast<int64_t>(m) * k;
  const int64_t b_stride = batched ? static_cast<int64_t>(k) * n : 0;
  const int64_t c_stride = static_cast<int64_t>(m) * n;
  {
    // One flat row space across the whole batch, so small-M batched GEMMs
    // (per-head attention, single-token decode steps) still fan out.
    // Within a chunk, runs of rows that share one B matrix go through the
    // multi-row kernels, which load B once per 8 (or 4) output rows.
    // Grouping never changes an output element's accumulation order
    // (always p ascending), so results stay bit-identical at any thread
    // count.
    const float* adata = a.data().data();
    const float* bdata = b.data().data();
    float* cdata = out.data();
    const tensor::simd::KernelSet& ks = tensor::simd::ActiveKernels();
    rt::ParallelFor(
        GemmRowGrain(k, n), 0, batch * m, [&](int64_t lo, int64_t hi) {
          int64_t r = lo;
          while (r < hi) {
            const int64_t bi = r / m;
            const int64_t i = r % m;
            const float* arow = adata + bi * a_stride + i * k;
            const float* bp = bdata + bi * b_stride;
            float* crow = cdata + bi * c_stride + i * n;
            const int64_t run = std::min(hi - r, static_cast<int64_t>(m - i));
            int64_t done = 0;
            if (!transpose_b) {
              // Walk the rows sharing this B matrix in groups of eight,
              // then four, so the widest multi-row kernel reuses each B
              // load. Grouping never changes an output element's
              // accumulation order (always p ascending), so results stay
              // bit-identical at any thread count and batch size. The NT
              // path stays row-at-a-time on purpose — see GemmRowNT.
              for (; done + 8 <= run; done += 8) {
                ks.gemm8_row_nn_zero(arow + done * k, bp, crow + done * n, k,
                                     n);
              }
              for (; done + 4 <= run; done += 4) {
                ks.gemm4_row_nn_zero(arow + done * k, bp, crow + done * n, k,
                                     n);
              }
            }
            for (; done < run; ++done) {
              if (transpose_b) {
                ks.gemm_row_nt(arow + done * k, bp, crow + done * n, k, n);
              } else {
                ks.gemm_row_nn_zero(arow + done * k, bp, crow + done * n, k,
                                    n);
              }
            }
            r += run;
          }
        });
  }

  auto ai = a.impl();
  auto bimpl = b.impl();
  Tensor result =
      MakeResult(std::move(out_shape), std::move(out), {a, b}, nullptr);
  if (result.requires_grad()) {
    auto ri = result.impl();
    result.impl()->backward_fn = [ai, bimpl, ri, batch, m, k, n, a_stride,
                                  b_stride, c_stride, transpose_b]() {
      const bool need_a = ai->requires_grad;
      const bool need_b = bimpl->requires_grad;
      if (need_a) ai->EnsureGrad();
      if (need_b) bimpl->EnsureGrad();
      const float* gdata = ri->grad.data();
      const float* adata = ai->data.data();
      const float* bdata = bimpl->data.data();
      if (need_a) {
        // dA = dC * B^T (plain) or dC * B (transpose_b): one dA row per
        // dC row, disjoint across the flattened (batch, row) space.
        float* gadata = ai->grad.data();
        const tensor::simd::KernelSet& ks = tensor::simd::ActiveKernels();
        rt::ParallelFor(
            GemmRowGrain(n, k), 0, batch * m, [&](int64_t lo, int64_t hi) {
              for (int64_t r = lo; r < hi; ++r) {
                const int64_t bi = r / m;
                const int64_t i = r % m;
                const float* grow = gdata + bi * c_stride + i * n;
                const float* bp = bdata + bi * b_stride;
                float* garow = gadata + bi * a_stride + i * k;
                if (transpose_b) {
                  GemmRowNN(grow, bp, garow, n, k);
                } else {
                  ks.gemm_row_nt(grow, bp, garow, n, k);
                }
              }
            });
      }
      if (need_b) {
        // dB = A^T * dC (plain, [k, n] rows) or dC^T * A (transpose_b,
        // [n, k] rows). In the batched case each bi owns a disjoint dB
        // slab; unbatched means batch == 1, so rows never collide and the
        // i-ascending accumulation order is thread-count independent.
        const int rows_b = transpose_b ? n : k;
        const int cols_b = transpose_b ? k : n;
        float* gbdata = bimpl->grad.data();
        rt::ParallelFor(
            GemmRowGrain(m, cols_b), 0, batch * rows_b,
            [&](int64_t lo, int64_t hi) {
              for (int64_t r = lo; r < hi; ++r) {
                const int64_t bi = r / rows_b;
                const int64_t row = r % rows_b;
                const float* grow = gdata + bi * c_stride;
                const float* ap = adata + bi * a_stride;
                float* gbrow =
                    gbdata + bi * b_stride + row * cols_b;
                if (transpose_b) {
                  GemmRowTN(grow, ap, gbrow, m, n, k,
                            static_cast<int>(row));
                } else {
                  GemmRowTN(ap, grow, gbrow, m, k, n,
                            static_cast<int>(row));
                }
              }
            });
      }
    };
  }
  return result;
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  return MatMulImpl(a, b, /*transpose_b=*/false);
}

Tensor MatMulTransposeB(const Tensor& a, const Tensor& b) {
  return MatMulImpl(a, b, /*transpose_b=*/true);
}

QuantizedMatrix QuantizeWeights(const Tensor& w) {
  VIST5_CHECK_EQ(w.ndim(), 2);
  QuantizedMatrix q;
  q.k = w.dim(0);
  q.n = w.dim(1);
  q.data.assign(static_cast<size_t>(q.k) * q.n, 0);
  q.scales.assign(static_cast<size_t>(q.n), 0.0f);
  const float* wd = w.data().data();
  for (int j = 0; j < q.n; ++j) {
    float amax = 0.0f;
    for (int p = 0; p < q.k; ++p) {
      amax = std::max(amax, std::fabs(wd[static_cast<size_t>(p) * q.n + j]));
    }
    if (amax == 0.0f) continue;  // all-zero channel: scale 0, codes 0
    const float scale = amax / 127.0f;
    q.scales[static_cast<size_t>(j)] = scale;
    for (int p = 0; p < q.k; ++p) {
      // Round-to-nearest, ties away from zero (std::lround), clamped to
      // the symmetric code range. Pinned here and replicated verbatim by
      // the reference quantizer in tests/tensor_test.cc.
      const long code =
          std::lround(wd[static_cast<size_t>(p) * q.n + j] / scale);
      q.data[static_cast<size_t>(p) * q.n + j] = static_cast<int8_t>(
          std::max<long>(-127, std::min<long>(127, code)));
    }
  }
  return q;
}

Tensor DequantizeWeights(const QuantizedMatrix& q) {
  VIST5_CHECK(q.defined());
  std::vector<float> out(static_cast<size_t>(q.k) * q.n);
  for (int p = 0; p < q.k; ++p) {
    for (int j = 0; j < q.n; ++j) {
      const size_t idx = static_cast<size_t>(p) * q.n + j;
      out[idx] = static_cast<float>(q.data[idx]) *
                 q.scales[static_cast<size_t>(j)];
    }
  }
  return Tensor({q.k, q.n}, std::move(out));
}

Tensor MatMulInt8(const Tensor& a, const QuantizedMatrix& b) {
  VIST5_CHECK(!GradEnabled()) << "MatMulInt8 is inference-only";
  VIST5_CHECK(b.defined());
  const auto& as = a.shape();
  VIST5_CHECK_GE(as.size(), 2u);
  const int k = as.back();
  VIST5_CHECK_EQ(k, b.k);
  const int n = b.n;
  const int64_t m = Prod(as, 0, as.size() - 1);
  std::vector<int> out_shape = as;
  out_shape.back() = n;
  std::vector<float> out(static_cast<size_t>(m) * n, 0.0f);
  static obs::Counter* weight_bytes =
      obs::GetCounter("gemm/weight_bytes_i8");
  weight_bytes->Add(b.WeightBytes());
  const float* adata = a.data().data();
  const int8_t* bdata = b.data.data();
  const float* sdata = b.scales.data();
  float* cdata = out.data();
  const tensor::simd::KernelSet& ks = tensor::simd::ActiveKernels();
  // Same flat row space, grain, and 8/4/1 shared-B grouping as the float
  // MatMul: grouping never changes an output element's accumulation order
  // (always p ascending), so results stay bit-identical at any thread
  // count and batch size.
  rt::ParallelFor(GemmRowGrain(k, n), 0, m, [&](int64_t lo, int64_t hi) {
    int64_t r = lo;
    while (r < hi) {
      const float* arow = adata + r * k;
      float* crow = cdata + r * n;
      const int64_t run = hi - r;
      int64_t done = 0;
      for (; done + 8 <= run; done += 8) {
        ks.gemm8_row_nn_zero_i8(arow + done * k, bdata, sdata,
                                crow + done * n, k, n);
      }
      for (; done + 4 <= run; done += 4) {
        ks.gemm4_row_nn_zero_i8(arow + done * k, bdata, sdata,
                                crow + done * n, k, n);
      }
      for (; done < run; ++done) {
        ks.gemm_row_nn_zero_i8(arow + done * k, bdata, sdata,
                               crow + done * n, k, n);
      }
      r += run;
    }
  });
  return Tensor(std::move(out_shape), std::move(out));
}

Tensor BoundedAttnScores(const Tensor& q, const Tensor& k,
                         const std::vector<int>& valid) {
  VIST5_CHECK(!GradEnabled()) << "BoundedAttnScores is inference-only";
  VIST5_CHECK_EQ(q.ndim(), 4);
  VIST5_CHECK_EQ(k.ndim(), 4);
  VIST5_CHECK_EQ(q.dim(2), 1);
  VIST5_CHECK_EQ(q.dim(0), k.dim(0));
  VIST5_CHECK_EQ(q.dim(1), k.dim(1));
  VIST5_CHECK_EQ(q.dim(3), k.dim(3));
  const int b = q.dim(0);
  const int h = q.dim(1);
  const int tk = k.dim(2);
  const int dh = q.dim(3);
  VIST5_CHECK_EQ(static_cast<int>(valid.size()), b);
  std::vector<float> out(static_cast<size_t>(b) * h * tk, 0.0f);
  const float* qd = q.data().data();
  const float* kd = k.data().data();
  float* od = out.data();
  const tensor::simd::KernelSet& ks = tensor::simd::ActiveKernels();
  rt::ParallelFor(
      GemmRowGrain(dh, tk), 0, static_cast<int64_t>(b) * h,
      [&](int64_t lo, int64_t hi) {
        for (int64_t plane = lo; plane < hi; ++plane) {
          const int bi = static_cast<int>(plane / h);
          const int n = std::min(std::max(valid[static_cast<size_t>(bi)], 0),
                                 tk);
          ks.gemm_row_nt(qd + plane * dh, kd + plane * tk * dh,
                         od + plane * tk, dh, n);
        }
      });
  return Tensor({b, h, 1, tk}, std::move(out));
}

Tensor BoundedAttnContext(const Tensor& probs, const Tensor& v,
                          const std::vector<int>& valid) {
  VIST5_CHECK(!GradEnabled()) << "BoundedAttnContext is inference-only";
  VIST5_CHECK_EQ(probs.ndim(), 4);
  VIST5_CHECK_EQ(v.ndim(), 4);
  VIST5_CHECK_EQ(probs.dim(2), 1);
  VIST5_CHECK_EQ(probs.dim(0), v.dim(0));
  VIST5_CHECK_EQ(probs.dim(1), v.dim(1));
  VIST5_CHECK_EQ(probs.dim(3), v.dim(2));
  const int b = probs.dim(0);
  const int h = probs.dim(1);
  const int tk = v.dim(2);
  const int dh = v.dim(3);
  VIST5_CHECK_EQ(static_cast<int>(valid.size()), b);
  std::vector<float> out(static_cast<size_t>(b) * h * dh, 0.0f);
  const float* pd = probs.data().data();
  const float* vd = v.data().data();
  float* od = out.data();
  const tensor::simd::KernelSet& ks = tensor::simd::ActiveKernels();
  rt::ParallelFor(
      GemmRowGrain(tk, dh), 0, static_cast<int64_t>(b) * h,
      [&](int64_t lo, int64_t hi) {
        for (int64_t plane = lo; plane < hi; ++plane) {
          const int bi = static_cast<int>(plane / h);
          const int n = std::min(std::max(valid[static_cast<size_t>(bi)], 0),
                                 tk);
          ks.gemm_row_nn_zero(pd + plane * tk, vd + plane * tk * dh,
                              od + plane * dh, n, dh);
        }
      });
  return Tensor({b, h, 1, dh}, std::move(out));
}

namespace {

// Softmax along the last dim with an optional mask predicate; rows where
// every entry is masked become all-zero distributions.
Tensor SoftmaxImpl(const Tensor& x,
                   const std::function<int(int64_t row)>& valid_cols,
                   int last) {
  const int64_t rows = last > 0 ? x.NumElements() / last : 0;
  std::vector<float> out(x.data().size());
  const float* xdata = x.data().data();
  float* odata = out.data();
  // Row-parallel: every row's max/exp/normalize runs start to finish inside
  // one chunk, so no reduction ever crosses a thread boundary. Masking is a
  // per-row valid prefix (`valid_cols`, null = whole row): every mask this
  // kernel serves — key-length padding and causal visibility — excludes a
  // contiguous suffix, so the hot loops carry no per-element predicate.
  rt::ParallelFor(RowOpGrain(last), 0, rows, [&](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      const float* xp = xdata + r * last;
      float* op = odata + r * last;
      const int valid = valid_cols ? valid_cols(r) : last;
      float maxv = -1e30f;
      for (int j = 0; j < valid; ++j) maxv = std::max(maxv, xp[j]);
      float sum = 0.0f;
      for (int j = 0; j < valid; ++j) {
        op[j] = std::exp(xp[j] - maxv);
        sum += op[j];
      }
      for (int j = valid; j < last; ++j) op[j] = 0.0f;
      if (sum > 0.0f) {
        const float inv = 1.0f / sum;
        for (int j = 0; j < valid; ++j) op[j] *= inv;
      }
    }
  });
  auto xi = x.impl();
  Tensor result = MakeResult(x.shape(), std::move(out), {x}, nullptr);
  if (result.requires_grad()) {
    auto ri = result.impl();
    result.impl()->backward_fn = [xi, ri, rows, last]() {
      xi->EnsureGrad();
      rt::ParallelFor(
          RowOpGrain(last), 0, rows, [&](int64_t lo, int64_t hi) {
            for (int64_t r = lo; r < hi; ++r) {
              const float* y = ri->data.data() + r * last;
              const float* gy = ri->grad.data() + r * last;
              float* gx = xi->grad.data() + r * last;
              float dot = 0.0f;
              for (int j = 0; j < last; ++j) dot += y[j] * gy[j];
              for (int j = 0; j < last; ++j) gx[j] += y[j] * (gy[j] - dot);
            }
          });
    };
  }
  return result;
}

}  // namespace

Tensor Softmax(const Tensor& x) {
  return SoftmaxImpl(x, nullptr, x.dim(-1));
}

Tensor MaskedSoftmax(const Tensor& scores, const std::vector<int>& key_lengths,
                     bool causal, int query_offset) {
  VIST5_CHECK_EQ(scores.ndim(), 4);
  const int b = scores.dim(0);
  const int h = scores.dim(1);
  const int tq = scores.dim(2);
  const int tk = scores.dim(3);
  VIST5_CHECK_EQ(static_cast<int>(key_lengths.size()), b);
  auto valid_cols = [=, &key_lengths](int64_t row) {
    // row indexes [B, H, Tq] flattened. Both masks cut a suffix: keys at or
    // beyond the batch entry's length, and (causally) keys after the query.
    const int batch = static_cast<int>(row / (static_cast<int64_t>(h) * tq));
    int valid = std::min(key_lengths[batch], tk);
    if (causal) {
      const int q = static_cast<int>(row % tq);
      valid = std::min(valid, q + query_offset + 1);
    }
    return std::max(valid, 0);
  };
  return SoftmaxImpl(scores, valid_cols, tk);
}

Tensor RmsNorm(const Tensor& x, const Tensor& weight, float eps) {
  const int d = x.dim(-1);
  VIST5_CHECK_EQ(weight.NumElements(), d);
  const int64_t rows = x.NumElements() / d;
  std::vector<float> out(x.data().size());
  std::vector<float> inv_rms(static_cast<size_t>(rows));
  const float* xdata = x.data().data();
  const float* wdata = weight.data().data();
  rt::ParallelFor(RowOpGrain(d), 0, rows, [&](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      const float* xp = xdata + r * d;
      float ss = 0.0f;
      for (int j = 0; j < d; ++j) ss += xp[j] * xp[j];
      const float inv = 1.0f / std::sqrt(ss / d + eps);
      inv_rms[static_cast<size_t>(r)] = inv;
      float* op = out.data() + r * d;
      for (int j = 0; j < d; ++j) op[j] = xp[j] * inv * wdata[j];
    }
  });
  auto xi = x.impl();
  auto wi = weight.impl();
  Tensor result = MakeResult(x.shape(), std::move(out), {x, weight}, nullptr);
  if (result.requires_grad()) {
    auto ri = result.impl();
    result.impl()->backward_fn = [xi, wi, ri, rows, d,
                                  inv_rms = std::move(inv_rms)]() {
      const bool need_x = xi->requires_grad;
      const bool need_w = wi->requires_grad;
      if (need_x) xi->EnsureGrad();
      if (need_w) wi->EnsureGrad();
      // The weight gradient sums over every row, so it cannot be row-
      // parallel directly. Fixed-order reduction tree instead: each chunk
      // (whose boundaries depend only on the grain, not the thread count)
      // accumulates rows in ascending order into its own scratch slot, and
      // the chunks are folded serially in index order afterwards —
      // bit-identical for any thread count.
      const int64_t grain = RowOpGrain(d);
      const int64_t nchunks = rt::NumChunks(grain, 0, rows);
      std::vector<float> wpartial(
          need_w ? static_cast<size_t>(nchunks) * d : 0, 0.0f);
      rt::ParallelForChunked(
          grain, 0, rows, [&](int64_t chunk, int64_t lo, int64_t hi) {
            float* wp = need_w ? wpartial.data() + chunk * d : nullptr;
            for (int64_t r = lo; r < hi; ++r) {
              const float inv = inv_rms[static_cast<size_t>(r)];
              const float* xp = xi->data.data() + r * d;
              const float* gy = ri->grad.data() + r * d;
              if (need_w) {
                for (int j = 0; j < d; ++j) wp[j] += gy[j] * xp[j] * inv;
              }
              if (need_x) {
                float dot = 0.0f;  // sum_j gy_j * w_j * x_j
                for (int j = 0; j < d; ++j) dot += gy[j] * wi->data[j] * xp[j];
                const float scale = dot * inv * inv * inv / d;
                float* gx = xi->grad.data() + r * d;
                for (int j = 0; j < d; ++j) {
                  gx[j] += gy[j] * wi->data[j] * inv - xp[j] * scale;
                }
              }
            }
          });
      if (need_w) {
        for (int64_t c = 0; c < nchunks; ++c) {
          const float* wp = wpartial.data() + c * d;
          for (int j = 0; j < d; ++j) wi->grad[j] += wp[j];
        }
      }
    };
  }
  return result;
}

Tensor LayerNorm(const Tensor& x, const Tensor& gain, const Tensor& bias,
                 float eps) {
  const int d = x.dim(-1);
  VIST5_CHECK_EQ(gain.NumElements(), d);
  VIST5_CHECK_EQ(bias.NumElements(), d);
  const int64_t rows = x.NumElements() / d;
  std::vector<float> out(x.data().size());
  std::vector<float> inv_std(static_cast<size_t>(rows));
  std::vector<float> means(static_cast<size_t>(rows));
  const float* xdata = x.data().data();
  const float* gdata = gain.data().data();
  const float* bdata = bias.data().data();
  rt::ParallelFor(RowOpGrain(d), 0, rows, [&](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      const float* xp = xdata + r * d;
      float mean = 0.0f;
      for (int j = 0; j < d; ++j) mean += xp[j];
      mean /= d;
      float var = 0.0f;
      for (int j = 0; j < d; ++j) var += (xp[j] - mean) * (xp[j] - mean);
      var /= d;
      const float inv = 1.0f / std::sqrt(var + eps);
      means[static_cast<size_t>(r)] = mean;
      inv_std[static_cast<size_t>(r)] = inv;
      float* op = out.data() + r * d;
      for (int j = 0; j < d; ++j) {
        op[j] = (xp[j] - mean) * inv * gdata[j] + bdata[j];
      }
    }
  });
  auto xi = x.impl();
  auto gi = gain.impl();
  auto bi = bias.impl();
  Tensor result =
      MakeResult(x.shape(), std::move(out), {x, gain, bias}, nullptr);
  if (result.requires_grad()) {
    auto ri = result.impl();
    result.impl()->backward_fn = [xi, gi, bi, ri, rows, d,
                                  inv_std = std::move(inv_std),
                                  means = std::move(means)]() {
      const bool need_x = xi->requires_grad;
      const bool need_g = gi->requires_grad;
      const bool need_b = bi->requires_grad;
      if (need_x) xi->EnsureGrad();
      if (need_g) gi->EnsureGrad();
      if (need_b) bi->EnsureGrad();
      // Same fixed-order chunk-scratch reduction as RmsNorm's backward:
      // gain/bias grads sum over rows, so each chunk owns a scratch slot
      // and the slots fold serially in chunk order.
      const int64_t grain = RowOpGrain(d);
      const int64_t nchunks = rt::NumChunks(grain, 0, rows);
      std::vector<float> gpartial(
          need_g ? static_cast<size_t>(nchunks) * d : 0, 0.0f);
      std::vector<float> bpartial(
          need_b ? static_cast<size_t>(nchunks) * d : 0, 0.0f);
      rt::ParallelForChunked(
          grain, 0, rows, [&](int64_t chunk, int64_t lo, int64_t hi) {
            float* gp = need_g ? gpartial.data() + chunk * d : nullptr;
            float* bp = need_b ? bpartial.data() + chunk * d : nullptr;
            for (int64_t r = lo; r < hi; ++r) {
              const float inv = inv_std[static_cast<size_t>(r)];
              const float mean = means[static_cast<size_t>(r)];
              const float* xp = xi->data.data() + r * d;
              const float* gy = ri->grad.data() + r * d;
              if (need_g) {
                for (int j = 0; j < d; ++j)
                  gp[j] += gy[j] * (xp[j] - mean) * inv;
              }
              if (need_b) {
                for (int j = 0; j < d; ++j) bp[j] += gy[j];
              }
              if (need_x) {
                // Let xhat = (x - mean) * inv, dy' = gy * gain.
                float sum_dy = 0.0f;
                float sum_dy_xhat = 0.0f;
                for (int j = 0; j < d; ++j) {
                  const float dyj = gy[j] * gi->data[j];
                  const float xhat = (xp[j] - mean) * inv;
                  sum_dy += dyj;
                  sum_dy_xhat += dyj * xhat;
                }
                float* gx = xi->grad.data() + r * d;
                for (int j = 0; j < d; ++j) {
                  const float dyj = gy[j] * gi->data[j];
                  const float xhat = (xp[j] - mean) * inv;
                  gx[j] += inv * (dyj - sum_dy / d - xhat * sum_dy_xhat / d);
                }
              }
            }
          });
      for (int64_t c = 0; c < nchunks; ++c) {
        if (need_g) {
          const float* gp = gpartial.data() + c * d;
          for (int j = 0; j < d; ++j) gi->grad[j] += gp[j];
        }
        if (need_b) {
          const float* bp = bpartial.data() + c * d;
          for (int j = 0; j < d; ++j) bi->grad[j] += bp[j];
        }
      }
    };
  }
  return result;
}

Tensor Sigmoid(const Tensor& x) {
  std::vector<float> out(x.data().size());
  ParallelElems(static_cast<int64_t>(out.size()), [&](int64_t i) {
    out[i] = 1.0f / (1.0f + std::exp(-x.data()[i]));
  });
  auto xi = x.impl();
  Tensor result = MakeResult(x.shape(), std::move(out), {x}, nullptr);
  if (result.requires_grad()) {
    auto ri = result.impl();
    result.impl()->backward_fn = [xi, ri]() {
      xi->EnsureGrad();
      ParallelElems(static_cast<int64_t>(ri->grad.size()), [&](int64_t i) {
        const float y = ri->data[i];
        xi->grad[i] += ri->grad[i] * y * (1.0f - y);
      });
    };
  }
  return result;
}

Tensor Tanh(const Tensor& x) {
  std::vector<float> out(x.data().size());
  ParallelElems(static_cast<int64_t>(out.size()),
                [&](int64_t i) { out[i] = std::tanh(x.data()[i]); });
  auto xi = x.impl();
  Tensor result = MakeResult(x.shape(), std::move(out), {x}, nullptr);
  if (result.requires_grad()) {
    auto ri = result.impl();
    result.impl()->backward_fn = [xi, ri]() {
      xi->EnsureGrad();
      ParallelElems(static_cast<int64_t>(ri->grad.size()), [&](int64_t i) {
        const float y = ri->data[i];
        xi->grad[i] += ri->grad[i] * (1.0f - y * y);
      });
    };
  }
  return result;
}

Tensor Transpose2D(const Tensor& x) {
  VIST5_CHECK_EQ(x.ndim(), 2);
  const int m = x.dim(0);
  const int n = x.dim(1);
  std::vector<float> out(x.data().size());
  rt::ParallelFor(RowOpGrain(n), 0, m, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      for (int j = 0; j < n; ++j) {
        out[static_cast<size_t>(j) * m + i] =
            x.data()[static_cast<size_t>(i) * n + j];
      }
    }
  });
  auto xi = x.impl();
  Tensor result = MakeResult({n, m}, std::move(out), {x}, nullptr);
  if (result.requires_grad()) {
    auto ri = result.impl();
    result.impl()->backward_fn = [xi, ri, m, n]() {
      xi->EnsureGrad();
      rt::ParallelFor(RowOpGrain(n), 0, m, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          for (int j = 0; j < n; ++j) {
            xi->grad[static_cast<size_t>(i) * n + j] +=
                ri->grad[static_cast<size_t>(j) * m + i];
          }
        }
      });
    };
  }
  return result;
}

Tensor Relu(const Tensor& x) {
  std::vector<float> out(x.data().size());
  ParallelElems(static_cast<int64_t>(out.size()), [&](int64_t i) {
    out[i] = x.data()[i] > 0.0f ? x.data()[i] : 0.0f;
  });
  auto xi = x.impl();
  Tensor result = MakeResult(x.shape(), std::move(out), {x}, nullptr);
  if (result.requires_grad()) {
    auto ri = result.impl();
    result.impl()->backward_fn = [xi, ri]() {
      xi->EnsureGrad();
      ParallelElems(static_cast<int64_t>(ri->grad.size()), [&](int64_t i) {
        if (xi->data[i] > 0.0f) xi->grad[i] += ri->grad[i];
      });
    };
  }
  return result;
}

Tensor Gelu(const Tensor& x) {
  constexpr float kC = 0.7978845608028654f;  // sqrt(2/pi)
  std::vector<float> out(x.data().size());
  ParallelElems(static_cast<int64_t>(out.size()), [&](int64_t i) {
    const float v = x.data()[i];
    const float t = std::tanh(kC * (v + 0.044715f * v * v * v));
    out[i] = 0.5f * v * (1.0f + t);
  });
  auto xi = x.impl();
  Tensor result = MakeResult(x.shape(), std::move(out), {x}, nullptr);
  if (result.requires_grad()) {
    auto ri = result.impl();
    result.impl()->backward_fn = [xi, ri]() {
      xi->EnsureGrad();
      ParallelElems(static_cast<int64_t>(ri->grad.size()), [&](int64_t i) {
        const float v = xi->data[i];
        const float u = kC * (v + 0.044715f * v * v * v);
        const float t = std::tanh(u);
        const float du = kC * (1.0f + 3.0f * 0.044715f * v * v);
        const float grad = 0.5f * (1.0f + t) + 0.5f * v * (1.0f - t * t) * du;
        xi->grad[i] += ri->grad[i] * grad;
      });
    };
  }
  return result;
}

Tensor Dropout(const Tensor& x, float p, Rng* rng) {
  if (p <= 0.0f || !GradEnabled()) return x;
  VIST5_CHECK_LT(p, 1.0f);
  const float keep_scale = 1.0f / (1.0f - p);
  std::vector<float> mask(x.data().size());
  std::vector<float> out(x.data().size());
  for (size_t i = 0; i < out.size(); ++i) {
    mask[i] = rng->Bernoulli(p) ? 0.0f : keep_scale;
    out[i] = x.data()[i] * mask[i];
  }
  auto xi = x.impl();
  Tensor result = MakeResult(x.shape(), std::move(out), {x}, nullptr);
  if (result.requires_grad()) {
    auto ri = result.impl();
    result.impl()->backward_fn = [xi, ri, mask = std::move(mask)]() {
      xi->EnsureGrad();
      for (size_t i = 0; i < ri->grad.size(); ++i)
        xi->grad[i] += ri->grad[i] * mask[i];
    };
  }
  return result;
}

Tensor Embedding(const Tensor& table, const std::vector<int>& ids) {
  VIST5_CHECK_EQ(table.ndim(), 2);
  const int vocab = table.dim(0);
  const int d = table.dim(1);
  const int n = static_cast<int>(ids.size());
  std::vector<float> out(static_cast<size_t>(n) * d);
  for (int i = 0; i < n; ++i) {
    VIST5_CHECK_GE(ids[i], 0);
    VIST5_CHECK_LT(ids[i], vocab);
  }
  rt::ParallelFor(RowOpGrain(d), 0, n, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      std::copy_n(
          table.data().data() + static_cast<size_t>(ids[i]) * d, d,
          out.data() + static_cast<size_t>(i) * d);
    }
  });
  auto ti = table.impl();
  Tensor result = MakeResult({n, d}, std::move(out), {table}, nullptr);
  if (result.requires_grad()) {
    auto ri = result.impl();
    result.impl()->backward_fn = [ti, ri, ids, d]() {
      ti->EnsureGrad();
      // Scatter-add stays serial: repeated ids (padding, common tokens)
      // collide on the same table row, so a parallel version would need
      // atomics or a sort — and either breaks the fixed accumulation order.
      for (size_t i = 0; i < ids.size(); ++i) {
        float* dst = ti->grad.data() + static_cast<size_t>(ids[i]) * d;
        const float* src = ri->grad.data() + i * d;
        for (int j = 0; j < d; ++j) dst[j] += src[j];
      }
    };
  }
  return result;
}

Tensor CrossEntropyLoss(const Tensor& logits, const std::vector<int>& targets,
                        int ignore_index) {
  VIST5_CHECK_EQ(logits.ndim(), 2);
  const int n = logits.dim(0);
  const int v = logits.dim(1);
  VIST5_CHECK_EQ(static_cast<int>(targets.size()), n);
  // Forward: stable log-softmax + NLL; store softmax probabilities for the
  // backward pass. Rows are independent (parallel); the scalar loss is then
  // folded serially in row order, so the sum never depends on scheduling.
  std::vector<float> probs(logits.data().size());
  std::vector<float> nll(static_cast<size_t>(n), 0.0f);
  for (int i = 0; i < n; ++i) {
    if (targets[i] != ignore_index) {
      VIST5_CHECK_GE(targets[i], 0);
      VIST5_CHECK_LT(targets[i], v);
    }
  }
  const float* ldata = logits.data().data();
  rt::ParallelFor(RowOpGrain(v), 0, n, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const float* row = ldata + static_cast<size_t>(i) * v;
      float* prow = probs.data() + static_cast<size_t>(i) * v;
      float maxv = row[0];
      for (int j = 1; j < v; ++j) maxv = std::max(maxv, row[j]);
      float sum = 0.0f;
      for (int j = 0; j < v; ++j) {
        prow[j] = std::exp(row[j] - maxv);
        sum += prow[j];
      }
      const float inv = 1.0f / sum;
      for (int j = 0; j < v; ++j) prow[j] *= inv;
      if (targets[static_cast<size_t>(i)] != ignore_index) {
        nll[static_cast<size_t>(i)] = std::log(
            std::max(prow[targets[static_cast<size_t>(i)]], 1e-12f));
      }
    }
  });
  double loss = 0.0;
  int count = 0;
  for (int i = 0; i < n; ++i) {
    if (targets[i] != ignore_index) {
      loss -= nll[static_cast<size_t>(i)];
      ++count;
    }
  }
  const float mean = count > 0 ? static_cast<float>(loss / count) : 0.0f;
  auto li = logits.impl();
  Tensor result = MakeResult({1}, {mean}, {logits}, nullptr);
  if (result.requires_grad()) {
    auto ri = result.impl();
    result.impl()->backward_fn = [li, ri, targets, ignore_index, n, v, count,
                                  probs = std::move(probs)]() {
      if (count == 0) return;
      li->EnsureGrad();
      const float gscale = ri->grad[0] / count;
      rt::ParallelFor(RowOpGrain(v), 0, n, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          if (targets[static_cast<size_t>(i)] == ignore_index) continue;
          const float* prow = probs.data() + static_cast<size_t>(i) * v;
          float* grow = li->grad.data() + static_cast<size_t>(i) * v;
          for (int j = 0; j < v; ++j) grow[j] += gscale * prow[j];
          grow[targets[static_cast<size_t>(i)]] -= gscale;
        }
      });
    };
  }
  return result;
}

Tensor Reshape(const Tensor& x, std::vector<int> new_shape) {
  int64_t n = 1;
  for (int d : new_shape) n *= d;
  VIST5_CHECK_EQ(n, x.NumElements());
  auto xi = x.impl();
  Tensor result =
      MakeResult(std::move(new_shape), x.data(), {x}, nullptr);
  if (result.requires_grad()) {
    auto ri = result.impl();
    result.impl()->backward_fn = [xi, ri]() {
      xi->EnsureGrad();
      for (size_t i = 0; i < ri->grad.size(); ++i)
        xi->grad[i] += ri->grad[i];
    };
  }
  return result;
}

Tensor SplitHeads(const Tensor& x, int batch, int seq, int heads) {
  VIST5_CHECK_EQ(x.ndim(), 2);
  VIST5_CHECK_EQ(x.dim(0), batch * seq);
  const int d = x.dim(1);
  VIST5_CHECK_EQ(d % heads, 0);
  const int dh = d / heads;
  std::vector<float> out(x.data().size());
  // [b, t, h, dh] -> [b, h, t, dh]; each flattened (b, t) row is disjoint in
  // both source and destination, so the copy parallelizes over rows.
  rt::ParallelFor(
      RowOpGrain(d), 0, static_cast<int64_t>(batch) * seq,
      [&](int64_t lo, int64_t hi) {
        for (int64_t r = lo; r < hi; ++r) {
          const int b = static_cast<int>(r / seq);
          const int t = static_cast<int>(r % seq);
          const float* src =
              x.data().data() + (static_cast<size_t>(b) * seq + t) * d;
          for (int h = 0; h < heads; ++h) {
            float* dst =
                out.data() +
                (((static_cast<size_t>(b) * heads + h) * seq) + t) * dh;
            std::copy_n(src + static_cast<size_t>(h) * dh, dh, dst);
          }
        }
      });
  auto xi = x.impl();
  Tensor result =
      MakeResult({batch, heads, seq, dh}, std::move(out), {x}, nullptr);
  if (result.requires_grad()) {
    auto ri = result.impl();
    result.impl()->backward_fn = [xi, ri, batch, seq, heads, dh, d]() {
      xi->EnsureGrad();
      rt::ParallelFor(
          RowOpGrain(d), 0, static_cast<int64_t>(batch) * seq,
          [&](int64_t lo, int64_t hi) {
            for (int64_t r = lo; r < hi; ++r) {
              const int b = static_cast<int>(r / seq);
              const int t = static_cast<int>(r % seq);
              float* dst =
                  xi->grad.data() + (static_cast<size_t>(b) * seq + t) * d;
              for (int h = 0; h < heads; ++h) {
                const float* src =
                    ri->grad.data() +
                    (((static_cast<size_t>(b) * heads + h) * seq) + t) * dh;
                for (int j = 0; j < dh; ++j)
                  dst[static_cast<size_t>(h) * dh + j] += src[j];
              }
            }
          });
    };
  }
  return result;
}

Tensor MergeHeads(const Tensor& x) {
  VIST5_CHECK_EQ(x.ndim(), 4);
  const int batch = x.dim(0);
  const int heads = x.dim(1);
  const int seq = x.dim(2);
  const int dh = x.dim(3);
  const int d = heads * dh;
  std::vector<float> out(x.data().size());
  // Inverse layout shuffle of SplitHeads, parallel over the same (b, t) row
  // space — each flattened row gathers its `heads` source slices.
  rt::ParallelFor(
      RowOpGrain(d), 0, static_cast<int64_t>(batch) * seq,
      [&](int64_t lo, int64_t hi) {
        for (int64_t r = lo; r < hi; ++r) {
          const int b = static_cast<int>(r / seq);
          const int t = static_cast<int>(r % seq);
          for (int h = 0; h < heads; ++h) {
            const float* src =
                x.data().data() +
                (((static_cast<size_t>(b) * heads + h) * seq) + t) * dh;
            float* dst = out.data() + (static_cast<size_t>(b) * seq + t) * d +
                         static_cast<size_t>(h) * dh;
            std::copy_n(src, dh, dst);
          }
        }
      });
  auto xi = x.impl();
  Tensor result = MakeResult({batch * seq, d}, std::move(out), {x}, nullptr);
  if (result.requires_grad()) {
    auto ri = result.impl();
    result.impl()->backward_fn = [xi, ri, batch, heads, seq, dh, d]() {
      xi->EnsureGrad();
      rt::ParallelFor(
          RowOpGrain(d), 0, static_cast<int64_t>(batch) * seq,
          [&](int64_t lo, int64_t hi) {
            for (int64_t r = lo; r < hi; ++r) {
              const int b = static_cast<int>(r / seq);
              const int t = static_cast<int>(r % seq);
              for (int h = 0; h < heads; ++h) {
                float* dst =
                    xi->grad.data() +
                    (((static_cast<size_t>(b) * heads + h) * seq) + t) * dh;
                const float* src = ri->grad.data() +
                                   (static_cast<size_t>(b) * seq + t) * d +
                                   static_cast<size_t>(h) * dh;
                for (int j = 0; j < dh; ++j) dst[j] += src[j];
              }
            }
          });
    };
  }
  return result;
}

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  VIST5_CHECK(!parts.empty());
  const int d = parts[0].dim(1);
  int total = 0;
  for (const Tensor& p : parts) {
    VIST5_CHECK_EQ(p.ndim(), 2);
    VIST5_CHECK_EQ(p.dim(1), d);
    total += p.dim(0);
  }
  std::vector<float> out;
  out.reserve(static_cast<size_t>(total) * d);
  for (const Tensor& p : parts) {
    out.insert(out.end(), p.data().begin(), p.data().end());
  }
  Tensor result = MakeResult({total, d}, std::move(out), parts, nullptr);
  if (result.requires_grad()) {
    auto ri = result.impl();
    std::vector<std::shared_ptr<TensorImpl>> impls;
    for (const Tensor& p : parts) impls.push_back(p.impl());
    result.impl()->backward_fn = [impls, ri]() {
      size_t offset = 0;
      for (auto& pi : impls) {
        if (pi->requires_grad) {
          pi->EnsureGrad();
          for (size_t i = 0; i < pi->data.size(); ++i)
            pi->grad[i] += ri->grad[offset + i];
        }
        offset += pi->data.size();
      }
    };
  }
  return result;
}

Tensor AppendTime(const Tensor& cache, const Tensor& chunk) {
  VIST5_CHECK(!GradEnabled()) << "AppendTime is an inference-only helper";
  VIST5_CHECK_EQ(chunk.ndim(), 4);
  if (!cache.defined()) return chunk;
  VIST5_CHECK_EQ(cache.ndim(), 4);
  const int b = cache.dim(0);
  const int h = cache.dim(1);
  const int t = cache.dim(2);
  const int dh = cache.dim(3);
  const int s = chunk.dim(2);
  VIST5_CHECK_EQ(chunk.dim(0), b);
  VIST5_CHECK_EQ(chunk.dim(1), h);
  VIST5_CHECK_EQ(chunk.dim(3), dh);
  std::vector<float> out(static_cast<size_t>(b) * h * (t + s) * dh);
  for (int bi = 0; bi < b; ++bi) {
    for (int hi = 0; hi < h; ++hi) {
      const size_t plane = static_cast<size_t>(bi) * h + hi;
      float* dst = out.data() + plane * (t + s) * dh;
      std::copy_n(cache.data().data() + plane * t * dh,
                  static_cast<size_t>(t) * dh, dst);
      std::copy_n(chunk.data().data() + plane * s * dh,
                  static_cast<size_t>(s) * dh, dst + static_cast<size_t>(t) * dh);
    }
  }
  return Tensor({b, h, t + s, dh}, std::move(out));
}

Tensor GatherBatch(const Tensor& x, const std::vector<int>& indices) {
  VIST5_CHECK(!GradEnabled()) << "GatherBatch is an inference-only helper";
  VIST5_CHECK_GE(x.ndim(), 1);
  const int b = x.dim(0);
  const int64_t slab = x.NumElements() / b;
  std::vector<int> shape = x.shape();
  shape[0] = static_cast<int>(indices.size());
  std::vector<float> out(static_cast<size_t>(indices.size()) * slab);
  for (size_t i = 0; i < indices.size(); ++i) {
    VIST5_CHECK_GE(indices[i], 0);
    VIST5_CHECK_LT(indices[i], b);
    std::copy_n(x.data().data() + indices[i] * slab, slab,
                out.data() + static_cast<int64_t>(i) * slab);
  }
  return Tensor(std::move(shape), std::move(out));
}

Tensor ScatterTime(const Tensor& cache, const Tensor& chunk,
                   const std::vector<int>& positions) {
  VIST5_CHECK(!GradEnabled()) << "ScatterTime is an inference-only helper";
  VIST5_CHECK_EQ(chunk.ndim(), 4);
  VIST5_CHECK_EQ(chunk.dim(2), 1);
  const int b = chunk.dim(0);
  const int h = chunk.dim(1);
  const int dh = chunk.dim(3);
  VIST5_CHECK_EQ(static_cast<int>(positions.size()), b);
  int t_old = 0;
  if (cache.defined()) {
    VIST5_CHECK_EQ(cache.ndim(), 4);
    VIST5_CHECK_EQ(cache.dim(0), b);
    VIST5_CHECK_EQ(cache.dim(1), h);
    VIST5_CHECK_EQ(cache.dim(3), dh);
    t_old = cache.dim(2);
  }
  int t_new = t_old;
  for (int pos : positions) {
    VIST5_CHECK_GE(pos, 0);
    t_new = std::max(t_new, pos + 1);
  }
  std::vector<float> out(static_cast<size_t>(b) * h * t_new * dh, 0.0f);
  for (int bi = 0; bi < b; ++bi) {
    for (int hi = 0; hi < h; ++hi) {
      const size_t plane = static_cast<size_t>(bi) * h + hi;
      float* dst = out.data() + plane * t_new * dh;
      if (t_old > 0) {
        std::copy_n(cache.data().data() + plane * t_old * dh,
                    static_cast<size_t>(t_old) * dh, dst);
      }
      std::copy_n(chunk.data().data() + plane * dh, static_cast<size_t>(dh),
                  dst + static_cast<size_t>(positions[bi]) * dh);
    }
  }
  return Tensor({b, h, t_new, dh}, std::move(out));
}

void ScatterTimeInPlace(Tensor* cache, const Tensor& chunk,
                        const std::vector<int>& positions) {
  VIST5_CHECK(!GradEnabled()) << "ScatterTimeInPlace is an inference-only helper";
  VIST5_CHECK(cache != nullptr);
  VIST5_CHECK(cache->defined());
  VIST5_CHECK(cache->impl().use_count() == 1)
      << "in-place scatter requires a uniquely-owned cache";
  VIST5_CHECK_EQ(cache->ndim(), 4);
  VIST5_CHECK_EQ(chunk.ndim(), 4);
  VIST5_CHECK_EQ(chunk.dim(2), 1);
  const int b = cache->dim(0);
  const int h = cache->dim(1);
  const int t = cache->dim(2);
  const int dh = cache->dim(3);
  VIST5_CHECK_EQ(chunk.dim(0), b);
  VIST5_CHECK_EQ(chunk.dim(1), h);
  VIST5_CHECK_EQ(chunk.dim(3), dh);
  VIST5_CHECK_EQ(static_cast<int>(positions.size()), b);
  float* data = cache->mutable_data().data();
  for (int bi = 0; bi < b; ++bi) {
    VIST5_CHECK_GE(positions[bi], 0);
    VIST5_CHECK_LT(positions[bi], t);
    for (int hi = 0; hi < h; ++hi) {
      const size_t plane = static_cast<size_t>(bi) * h + hi;
      std::copy_n(chunk.data().data() + plane * dh, static_cast<size_t>(dh),
                  data + (plane * t + positions[bi]) * dh);
    }
  }
}

Tensor PadTime(const Tensor& x, int t) {
  VIST5_CHECK(!GradEnabled()) << "PadTime is an inference-only helper";
  VIST5_CHECK_EQ(x.ndim(), 4);
  const int b = x.dim(0);
  const int h = x.dim(1);
  const int t_old = x.dim(2);
  const int dh = x.dim(3);
  VIST5_CHECK_GE(t, t_old);
  if (t == t_old) return x;
  std::vector<float> out(static_cast<size_t>(b) * h * t * dh, 0.0f);
  for (int bi = 0; bi < b; ++bi) {
    for (int hi = 0; hi < h; ++hi) {
      const size_t plane = static_cast<size_t>(bi) * h + hi;
      std::copy_n(x.data().data() + plane * t_old * dh,
                  static_cast<size_t>(t_old) * dh,
                  out.data() + plane * t * dh);
    }
  }
  return Tensor({b, h, t, dh}, std::move(out));
}

Tensor SliceTime(const Tensor& x, int t) {
  VIST5_CHECK(!GradEnabled()) << "SliceTime is an inference-only helper";
  VIST5_CHECK_EQ(x.ndim(), 4);
  const int b = x.dim(0);
  const int h = x.dim(1);
  const int t_old = x.dim(2);
  const int dh = x.dim(3);
  VIST5_CHECK_GE(t, 0);
  VIST5_CHECK_LE(t, t_old);
  if (t == t_old) return x;
  std::vector<float> out(static_cast<size_t>(b) * h * t * dh);
  for (int bi = 0; bi < b; ++bi) {
    for (int hi = 0; hi < h; ++hi) {
      const size_t plane = static_cast<size_t>(bi) * h + hi;
      std::copy_n(x.data().data() + plane * t_old * dh,
                  static_cast<size_t>(t) * dh, out.data() + plane * t * dh);
    }
  }
  return Tensor({b, h, t, dh}, std::move(out));
}

Tensor ConcatBatch(const Tensor& a, const Tensor& b) {
  VIST5_CHECK(!GradEnabled()) << "ConcatBatch is an inference-only helper";
  VIST5_CHECK_EQ(a.ndim(), 4);
  VIST5_CHECK_EQ(b.ndim(), 4);
  for (int d = 1; d < 4; ++d) VIST5_CHECK_EQ(a.dim(d), b.dim(d));
  std::vector<float> out;
  out.reserve(a.data().size() + b.data().size());
  out.insert(out.end(), a.data().begin(), a.data().end());
  out.insert(out.end(), b.data().begin(), b.data().end());
  return Tensor({a.dim(0) + b.dim(0), a.dim(1), a.dim(2), a.dim(3)},
                std::move(out));
}

Tensor GatherRows(const Tensor& x, const std::vector<int>& rows) {
  VIST5_CHECK_EQ(x.ndim(), 2);
  const int d = x.dim(1);
  const int n = static_cast<int>(rows.size());
  std::vector<float> out(static_cast<size_t>(n) * d);
  for (int i = 0; i < n; ++i) {
    VIST5_CHECK_GE(rows[i], 0);
    VIST5_CHECK_LT(rows[i], x.dim(0));
    std::copy_n(x.data().data() + static_cast<size_t>(rows[i]) * d, d,
                out.data() + static_cast<size_t>(i) * d);
  }
  auto xi = x.impl();
  Tensor result = MakeResult({n, d}, std::move(out), {x}, nullptr);
  if (result.requires_grad()) {
    auto ri = result.impl();
    result.impl()->backward_fn = [xi, ri, rows, d]() {
      xi->EnsureGrad();
      for (size_t i = 0; i < rows.size(); ++i) {
        float* dst = xi->grad.data() + static_cast<size_t>(rows[i]) * d;
        const float* src = ri->grad.data() + i * d;
        for (int j = 0; j < d; ++j) dst[j] += src[j];
      }
    };
  }
  return result;
}

Tensor Sum(const Tensor& x) {
  double total = 0.0;
  for (float v : x.data()) total += v;
  auto xi = x.impl();
  Tensor result =
      MakeResult({1}, {static_cast<float>(total)}, {x}, nullptr);
  if (result.requires_grad()) {
    auto ri = result.impl();
    result.impl()->backward_fn = [xi, ri]() {
      xi->EnsureGrad();
      for (size_t i = 0; i < xi->grad.size(); ++i)
        xi->grad[i] += ri->grad[0];
    };
  }
  return result;
}

}  // namespace ops
}  // namespace vist5
