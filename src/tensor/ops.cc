#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

namespace vist5 {
namespace ops {
namespace {

// ---------------------------------------------------------------------------
// GEMM kernels. All accumulate into C (callers zero-initialize).
// ---------------------------------------------------------------------------

// C[M,N] += A[M,K] * B[K,N]
void GemmNN(const float* a, const float* b, float* c, int m, int k, int n) {
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<size_t>(i) * k;
    float* crow = c + static_cast<size_t>(i) * n;
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      const float* brow = b + static_cast<size_t>(p) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

// C[M,N] += A[M,K] * B[N,K]^T  (rows of B are the columns of the product)
void GemmNT(const float* a, const float* b, float* c, int m, int k, int n) {
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<size_t>(i) * k;
    float* crow = c + static_cast<size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const float* brow = b + static_cast<size_t>(j) * k;
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] += acc;
    }
  }
}

// C[P,Q] += X[M,P]^T * Y[M,Q]
void GemmTN(const float* x, const float* y, float* c, int m, int p, int q) {
  for (int i = 0; i < m; ++i) {
    const float* xrow = x + static_cast<size_t>(i) * p;
    const float* yrow = y + static_cast<size_t>(i) * q;
    for (int a = 0; a < p; ++a) {
      const float xv = xrow[a];
      float* crow = c + static_cast<size_t>(a) * q;
      for (int b = 0; b < q; ++b) crow[b] += xv * yrow[b];
    }
  }
}

// ---------------------------------------------------------------------------
// Node construction helpers.
// ---------------------------------------------------------------------------

bool TracksGrad(const Tensor& t) {
  return GradEnabled() && t.requires_grad();
}

Tensor MakeResult(std::vector<int> shape, std::vector<float> data,
                  std::vector<Tensor> parents,
                  std::function<void()> backward_fn) {
  bool any_grad = false;
  for (const Tensor& p : parents) any_grad = any_grad || TracksGrad(p);
  Tensor out(std::move(shape), std::move(data), any_grad);
  if (any_grad) {
    for (const Tensor& p : parents) out.impl()->parents.push_back(p.impl());
    out.impl()->backward_fn = std::move(backward_fn);
  }
  return out;
}

int64_t Prod(const std::vector<int>& dims, size_t begin, size_t end) {
  int64_t p = 1;
  for (size_t i = begin; i < end; ++i) p *= dims[i];
  return p;
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  VIST5_CHECK(a.shape() == b.shape()) << a.ShapeString() << " vs "
                                      << b.ShapeString();
  std::vector<float> out(a.data().size());
  for (size_t i = 0; i < out.size(); ++i) out[i] = a.data()[i] + b.data()[i];
  auto ai = a.impl();
  auto bi = b.impl();
  Tensor result = MakeResult(a.shape(), std::move(out), {a, b}, nullptr);
  if (result.requires_grad()) {
    auto ri = result.impl();
    result.impl()->backward_fn = [ai, bi, ri]() {
      if (ai->requires_grad) {
        ai->EnsureGrad();
        for (size_t i = 0; i < ri->grad.size(); ++i)
          ai->grad[i] += ri->grad[i];
      }
      if (bi->requires_grad) {
        bi->EnsureGrad();
        for (size_t i = 0; i < ri->grad.size(); ++i)
          bi->grad[i] += ri->grad[i];
      }
    };
  }
  return result;
}

Tensor AddBroadcast(const Tensor& a, const Tensor& b) {
  const auto& as = a.shape();
  const auto& bs = b.shape();
  VIST5_CHECK_LE(bs.size(), as.size());
  for (size_t i = 0; i < bs.size(); ++i) {
    VIST5_CHECK_EQ(bs[bs.size() - 1 - i], as[as.size() - 1 - i]);
  }
  const int64_t inner = Prod(bs, 0, bs.size());
  const int64_t outer = a.NumElements() / inner;
  std::vector<float> out(a.data().size());
  for (int64_t o = 0; o < outer; ++o) {
    const float* ap = a.data().data() + o * inner;
    float* op = out.data() + o * inner;
    const float* bp = b.data().data();
    for (int64_t i = 0; i < inner; ++i) op[i] = ap[i] + bp[i];
  }
  auto ai = a.impl();
  auto bi = b.impl();
  Tensor result = MakeResult(a.shape(), std::move(out), {a, b}, nullptr);
  if (result.requires_grad()) {
    auto ri = result.impl();
    result.impl()->backward_fn = [ai, bi, ri, outer, inner]() {
      if (ai->requires_grad) {
        ai->EnsureGrad();
        for (size_t i = 0; i < ri->grad.size(); ++i)
          ai->grad[i] += ri->grad[i];
      }
      if (bi->requires_grad) {
        bi->EnsureGrad();
        for (int64_t o = 0; o < outer; ++o) {
          const float* gp = ri->grad.data() + o * inner;
          for (int64_t i = 0; i < inner; ++i) bi->grad[i] += gp[i];
        }
      }
    };
  }
  return result;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  VIST5_CHECK(a.shape() == b.shape());
  std::vector<float> out(a.data().size());
  for (size_t i = 0; i < out.size(); ++i) out[i] = a.data()[i] * b.data()[i];
  auto ai = a.impl();
  auto bi = b.impl();
  Tensor result = MakeResult(a.shape(), std::move(out), {a, b}, nullptr);
  if (result.requires_grad()) {
    auto ri = result.impl();
    result.impl()->backward_fn = [ai, bi, ri]() {
      if (ai->requires_grad) {
        ai->EnsureGrad();
        for (size_t i = 0; i < ri->grad.size(); ++i)
          ai->grad[i] += ri->grad[i] * bi->data[i];
      }
      if (bi->requires_grad) {
        bi->EnsureGrad();
        for (size_t i = 0; i < ri->grad.size(); ++i)
          bi->grad[i] += ri->grad[i] * ai->data[i];
      }
    };
  }
  return result;
}

Tensor Scale(const Tensor& a, float s) {
  std::vector<float> out(a.data().size());
  for (size_t i = 0; i < out.size(); ++i) out[i] = a.data()[i] * s;
  auto ai = a.impl();
  Tensor result = MakeResult(a.shape(), std::move(out), {a}, nullptr);
  if (result.requires_grad()) {
    auto ri = result.impl();
    result.impl()->backward_fn = [ai, ri, s]() {
      ai->EnsureGrad();
      for (size_t i = 0; i < ri->grad.size(); ++i)
        ai->grad[i] += ri->grad[i] * s;
    };
  }
  return result;
}

Tensor AddScalar(const Tensor& a, float s) {
  std::vector<float> out(a.data().size());
  for (size_t i = 0; i < out.size(); ++i) out[i] = a.data()[i] + s;
  auto ai = a.impl();
  Tensor result = MakeResult(a.shape(), std::move(out), {a}, nullptr);
  if (result.requires_grad()) {
    auto ri = result.impl();
    result.impl()->backward_fn = [ai, ri]() {
      ai->EnsureGrad();
      for (size_t i = 0; i < ri->grad.size(); ++i)
        ai->grad[i] += ri->grad[i];
    };
  }
  return result;
}

namespace {

// Shared implementation for MatMul / MatMulTransposeB. `transpose_b` selects
// whether b is [*, K, N] (false) or [*, N, K] (true).
Tensor MatMulImpl(const Tensor& a, const Tensor& b, bool transpose_b) {
  const auto& as = a.shape();
  const auto& bs = b.shape();
  VIST5_CHECK_GE(as.size(), 2u);
  VIST5_CHECK_GE(bs.size(), 2u);
  const int k = as.back();
  int n;
  if (transpose_b) {
    VIST5_CHECK_EQ(bs.back(), k);
    n = bs[bs.size() - 2];
  } else {
    VIST5_CHECK_EQ(bs[bs.size() - 2], k);
    n = bs.back();
  }

  const bool batched = bs.size() > 2;
  int64_t batch = 1;
  int m;
  if (batched) {
    VIST5_CHECK_EQ(as.size(), bs.size());
    for (size_t i = 0; i + 2 < as.size(); ++i) VIST5_CHECK_EQ(as[i], bs[i]);
    batch = Prod(as, 0, as.size() - 2);
    m = as[as.size() - 2];
  } else {
    // Fold every leading dim of `a` into rows.
    batch = 1;
    m = static_cast<int>(a.NumElements() / k);
  }

  std::vector<int> out_shape = as;
  out_shape.back() = n;
  std::vector<float> out(static_cast<size_t>(batch) * m * n, 0.0f);

  const int64_t a_stride = static_cast<int64_t>(m) * k;
  const int64_t b_stride = batched ? static_cast<int64_t>(k) * n : 0;
  const int64_t c_stride = static_cast<int64_t>(m) * n;
  for (int64_t bi = 0; bi < batch; ++bi) {
    const float* ap = a.data().data() + bi * a_stride;
    const float* bp = b.data().data() + bi * b_stride;
    float* cp = out.data() + bi * c_stride;
    if (transpose_b) {
      GemmNT(ap, bp, cp, m, k, n);
    } else {
      GemmNN(ap, bp, cp, m, k, n);
    }
  }

  auto ai = a.impl();
  auto bimpl = b.impl();
  Tensor result =
      MakeResult(std::move(out_shape), std::move(out), {a, b}, nullptr);
  if (result.requires_grad()) {
    auto ri = result.impl();
    result.impl()->backward_fn = [ai, bimpl, ri, batch, m, k, n, a_stride,
                                  b_stride, c_stride, transpose_b]() {
      const bool need_a = ai->requires_grad;
      const bool need_b = bimpl->requires_grad;
      if (need_a) ai->EnsureGrad();
      if (need_b) bimpl->EnsureGrad();
      for (int64_t bi = 0; bi < batch; ++bi) {
        const float* gp = ri->grad.data() + bi * c_stride;
        const float* ap = ai->data.data() + bi * a_stride;
        const float* bp = bimpl->data.data() + bi * b_stride;
        float* gap = need_a ? ai->grad.data() + bi * a_stride : nullptr;
        float* gbp = need_b ? bimpl->grad.data() + bi * b_stride : nullptr;
        if (!transpose_b) {
          // C = A[m,k] B[k,n]
          if (need_a) GemmNT(gp, bp, gap, m, n, k);   // dA = dC * B^T
          if (need_b) GemmTN(ap, gp, gbp, m, k, n);   // dB = A^T * dC
        } else {
          // C = A[m,k] B[n,k]^T
          if (need_a) GemmNN(gp, bp, gap, m, n, k);   // dA = dC * B
          if (need_b) GemmTN(gp, ap, gbp, m, n, k);   // dB = dC^T * A
        }
      }
    };
  }
  return result;
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  return MatMulImpl(a, b, /*transpose_b=*/false);
}

Tensor MatMulTransposeB(const Tensor& a, const Tensor& b) {
  return MatMulImpl(a, b, /*transpose_b=*/true);
}

namespace {

// Softmax along the last dim with an optional mask predicate; rows where
// every entry is masked become all-zero distributions.
Tensor SoftmaxImpl(const Tensor& x,
                   const std::function<bool(int64_t row, int col)>& masked,
                   int last) {
  const int64_t rows = x.NumElements() / last;
  std::vector<float> out(x.data().size());
  for (int64_t r = 0; r < rows; ++r) {
    const float* xp = x.data().data() + r * last;
    float* op = out.data() + r * last;
    float maxv = -1e30f;
    for (int j = 0; j < last; ++j) {
      if (masked && masked(r, j)) continue;
      maxv = std::max(maxv, xp[j]);
    }
    float sum = 0.0f;
    for (int j = 0; j < last; ++j) {
      if (masked && masked(r, j)) {
        op[j] = 0.0f;
      } else {
        op[j] = std::exp(xp[j] - maxv);
        sum += op[j];
      }
    }
    if (sum > 0.0f) {
      const float inv = 1.0f / sum;
      for (int j = 0; j < last; ++j) op[j] *= inv;
    }
  }
  auto xi = x.impl();
  Tensor result = MakeResult(x.shape(), std::move(out), {x}, nullptr);
  if (result.requires_grad()) {
    auto ri = result.impl();
    result.impl()->backward_fn = [xi, ri, rows, last]() {
      xi->EnsureGrad();
      for (int64_t r = 0; r < rows; ++r) {
        const float* y = ri->data.data() + r * last;
        const float* gy = ri->grad.data() + r * last;
        float* gx = xi->grad.data() + r * last;
        float dot = 0.0f;
        for (int j = 0; j < last; ++j) dot += y[j] * gy[j];
        for (int j = 0; j < last; ++j) gx[j] += y[j] * (gy[j] - dot);
      }
    };
  }
  return result;
}

}  // namespace

Tensor Softmax(const Tensor& x) {
  return SoftmaxImpl(x, nullptr, x.dim(-1));
}

Tensor MaskedSoftmax(const Tensor& scores, const std::vector<int>& key_lengths,
                     bool causal, int query_offset) {
  VIST5_CHECK_EQ(scores.ndim(), 4);
  const int b = scores.dim(0);
  const int h = scores.dim(1);
  const int tq = scores.dim(2);
  const int tk = scores.dim(3);
  VIST5_CHECK_EQ(static_cast<int>(key_lengths.size()), b);
  auto masked = [=, &key_lengths](int64_t row, int col) {
    // row indexes [B, H, Tq] flattened.
    const int q = static_cast<int>(row % tq);
    const int batch = static_cast<int>(row / (static_cast<int64_t>(h) * tq));
    if (col >= key_lengths[batch]) return true;
    if (causal && col > q + query_offset) return true;
    return false;
  };
  return SoftmaxImpl(scores, masked, tk);
}

Tensor RmsNorm(const Tensor& x, const Tensor& weight, float eps) {
  const int d = x.dim(-1);
  VIST5_CHECK_EQ(weight.NumElements(), d);
  const int64_t rows = x.NumElements() / d;
  std::vector<float> out(x.data().size());
  std::vector<float> inv_rms(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    const float* xp = x.data().data() + r * d;
    float ss = 0.0f;
    for (int j = 0; j < d; ++j) ss += xp[j] * xp[j];
    const float inv = 1.0f / std::sqrt(ss / d + eps);
    inv_rms[static_cast<size_t>(r)] = inv;
    float* op = out.data() + r * d;
    for (int j = 0; j < d; ++j) op[j] = xp[j] * inv * weight.data()[j];
  }
  auto xi = x.impl();
  auto wi = weight.impl();
  Tensor result = MakeResult(x.shape(), std::move(out), {x, weight}, nullptr);
  if (result.requires_grad()) {
    auto ri = result.impl();
    result.impl()->backward_fn = [xi, wi, ri, rows, d,
                                  inv_rms = std::move(inv_rms)]() {
      const bool need_x = xi->requires_grad;
      const bool need_w = wi->requires_grad;
      if (need_x) xi->EnsureGrad();
      if (need_w) wi->EnsureGrad();
      for (int64_t r = 0; r < rows; ++r) {
        const float inv = inv_rms[static_cast<size_t>(r)];
        const float* xp = xi->data.data() + r * d;
        const float* gy = ri->grad.data() + r * d;
        if (need_w) {
          for (int j = 0; j < d; ++j) wi->grad[j] += gy[j] * xp[j] * inv;
        }
        if (need_x) {
          float dot = 0.0f;  // sum_j gy_j * w_j * x_j
          for (int j = 0; j < d; ++j) dot += gy[j] * wi->data[j] * xp[j];
          const float scale = dot * inv * inv * inv / d;
          float* gx = xi->grad.data() + r * d;
          for (int j = 0; j < d; ++j) {
            gx[j] += gy[j] * wi->data[j] * inv - xp[j] * scale;
          }
        }
      }
    };
  }
  return result;
}

Tensor LayerNorm(const Tensor& x, const Tensor& gain, const Tensor& bias,
                 float eps) {
  const int d = x.dim(-1);
  VIST5_CHECK_EQ(gain.NumElements(), d);
  VIST5_CHECK_EQ(bias.NumElements(), d);
  const int64_t rows = x.NumElements() / d;
  std::vector<float> out(x.data().size());
  std::vector<float> inv_std(static_cast<size_t>(rows));
  std::vector<float> means(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    const float* xp = x.data().data() + r * d;
    float mean = 0.0f;
    for (int j = 0; j < d; ++j) mean += xp[j];
    mean /= d;
    float var = 0.0f;
    for (int j = 0; j < d; ++j) var += (xp[j] - mean) * (xp[j] - mean);
    var /= d;
    const float inv = 1.0f / std::sqrt(var + eps);
    means[static_cast<size_t>(r)] = mean;
    inv_std[static_cast<size_t>(r)] = inv;
    float* op = out.data() + r * d;
    for (int j = 0; j < d; ++j) {
      op[j] = (xp[j] - mean) * inv * gain.data()[j] + bias.data()[j];
    }
  }
  auto xi = x.impl();
  auto gi = gain.impl();
  auto bi = bias.impl();
  Tensor result =
      MakeResult(x.shape(), std::move(out), {x, gain, bias}, nullptr);
  if (result.requires_grad()) {
    auto ri = result.impl();
    result.impl()->backward_fn = [xi, gi, bi, ri, rows, d,
                                  inv_std = std::move(inv_std),
                                  means = std::move(means)]() {
      const bool need_x = xi->requires_grad;
      if (need_x) xi->EnsureGrad();
      if (gi->requires_grad) gi->EnsureGrad();
      if (bi->requires_grad) bi->EnsureGrad();
      for (int64_t r = 0; r < rows; ++r) {
        const float inv = inv_std[static_cast<size_t>(r)];
        const float mean = means[static_cast<size_t>(r)];
        const float* xp = xi->data.data() + r * d;
        const float* gy = ri->grad.data() + r * d;
        if (gi->requires_grad) {
          for (int j = 0; j < d; ++j)
            gi->grad[j] += gy[j] * (xp[j] - mean) * inv;
        }
        if (bi->requires_grad) {
          for (int j = 0; j < d; ++j) bi->grad[j] += gy[j];
        }
        if (need_x) {
          // Let xhat = (x - mean) * inv, dy' = gy * gain.
          float sum_dy = 0.0f;
          float sum_dy_xhat = 0.0f;
          for (int j = 0; j < d; ++j) {
            const float dyj = gy[j] * gi->data[j];
            const float xhat = (xp[j] - mean) * inv;
            sum_dy += dyj;
            sum_dy_xhat += dyj * xhat;
          }
          float* gx = xi->grad.data() + r * d;
          for (int j = 0; j < d; ++j) {
            const float dyj = gy[j] * gi->data[j];
            const float xhat = (xp[j] - mean) * inv;
            gx[j] += inv * (dyj - sum_dy / d - xhat * sum_dy_xhat / d);
          }
        }
      }
    };
  }
  return result;
}

Tensor Sigmoid(const Tensor& x) {
  std::vector<float> out(x.data().size());
  for (size_t i = 0; i < out.size(); ++i)
    out[i] = 1.0f / (1.0f + std::exp(-x.data()[i]));
  auto xi = x.impl();
  Tensor result = MakeResult(x.shape(), std::move(out), {x}, nullptr);
  if (result.requires_grad()) {
    auto ri = result.impl();
    result.impl()->backward_fn = [xi, ri]() {
      xi->EnsureGrad();
      for (size_t i = 0; i < ri->grad.size(); ++i) {
        const float y = ri->data[i];
        xi->grad[i] += ri->grad[i] * y * (1.0f - y);
      }
    };
  }
  return result;
}

Tensor Tanh(const Tensor& x) {
  std::vector<float> out(x.data().size());
  for (size_t i = 0; i < out.size(); ++i) out[i] = std::tanh(x.data()[i]);
  auto xi = x.impl();
  Tensor result = MakeResult(x.shape(), std::move(out), {x}, nullptr);
  if (result.requires_grad()) {
    auto ri = result.impl();
    result.impl()->backward_fn = [xi, ri]() {
      xi->EnsureGrad();
      for (size_t i = 0; i < ri->grad.size(); ++i) {
        const float y = ri->data[i];
        xi->grad[i] += ri->grad[i] * (1.0f - y * y);
      }
    };
  }
  return result;
}

Tensor Transpose2D(const Tensor& x) {
  VIST5_CHECK_EQ(x.ndim(), 2);
  const int m = x.dim(0);
  const int n = x.dim(1);
  std::vector<float> out(x.data().size());
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      out[static_cast<size_t>(j) * m + i] =
          x.data()[static_cast<size_t>(i) * n + j];
    }
  }
  auto xi = x.impl();
  Tensor result = MakeResult({n, m}, std::move(out), {x}, nullptr);
  if (result.requires_grad()) {
    auto ri = result.impl();
    result.impl()->backward_fn = [xi, ri, m, n]() {
      xi->EnsureGrad();
      for (int i = 0; i < m; ++i) {
        for (int j = 0; j < n; ++j) {
          xi->grad[static_cast<size_t>(i) * n + j] +=
              ri->grad[static_cast<size_t>(j) * m + i];
        }
      }
    };
  }
  return result;
}

Tensor Relu(const Tensor& x) {
  std::vector<float> out(x.data().size());
  for (size_t i = 0; i < out.size(); ++i)
    out[i] = x.data()[i] > 0.0f ? x.data()[i] : 0.0f;
  auto xi = x.impl();
  Tensor result = MakeResult(x.shape(), std::move(out), {x}, nullptr);
  if (result.requires_grad()) {
    auto ri = result.impl();
    result.impl()->backward_fn = [xi, ri]() {
      xi->EnsureGrad();
      for (size_t i = 0; i < ri->grad.size(); ++i) {
        if (xi->data[i] > 0.0f) xi->grad[i] += ri->grad[i];
      }
    };
  }
  return result;
}

Tensor Gelu(const Tensor& x) {
  constexpr float kC = 0.7978845608028654f;  // sqrt(2/pi)
  std::vector<float> out(x.data().size());
  for (size_t i = 0; i < out.size(); ++i) {
    const float v = x.data()[i];
    const float t = std::tanh(kC * (v + 0.044715f * v * v * v));
    out[i] = 0.5f * v * (1.0f + t);
  }
  auto xi = x.impl();
  Tensor result = MakeResult(x.shape(), std::move(out), {x}, nullptr);
  if (result.requires_grad()) {
    auto ri = result.impl();
    result.impl()->backward_fn = [xi, ri]() {
      xi->EnsureGrad();
      for (size_t i = 0; i < ri->grad.size(); ++i) {
        const float v = xi->data[i];
        const float u = kC * (v + 0.044715f * v * v * v);
        const float t = std::tanh(u);
        const float du = kC * (1.0f + 3.0f * 0.044715f * v * v);
        const float grad = 0.5f * (1.0f + t) + 0.5f * v * (1.0f - t * t) * du;
        xi->grad[i] += ri->grad[i] * grad;
      }
    };
  }
  return result;
}

Tensor Dropout(const Tensor& x, float p, Rng* rng) {
  if (p <= 0.0f || !GradEnabled()) return x;
  VIST5_CHECK_LT(p, 1.0f);
  const float keep_scale = 1.0f / (1.0f - p);
  std::vector<float> mask(x.data().size());
  std::vector<float> out(x.data().size());
  for (size_t i = 0; i < out.size(); ++i) {
    mask[i] = rng->Bernoulli(p) ? 0.0f : keep_scale;
    out[i] = x.data()[i] * mask[i];
  }
  auto xi = x.impl();
  Tensor result = MakeResult(x.shape(), std::move(out), {x}, nullptr);
  if (result.requires_grad()) {
    auto ri = result.impl();
    result.impl()->backward_fn = [xi, ri, mask = std::move(mask)]() {
      xi->EnsureGrad();
      for (size_t i = 0; i < ri->grad.size(); ++i)
        xi->grad[i] += ri->grad[i] * mask[i];
    };
  }
  return result;
}

Tensor Embedding(const Tensor& table, const std::vector<int>& ids) {
  VIST5_CHECK_EQ(table.ndim(), 2);
  const int vocab = table.dim(0);
  const int d = table.dim(1);
  const int n = static_cast<int>(ids.size());
  std::vector<float> out(static_cast<size_t>(n) * d);
  for (int i = 0; i < n; ++i) {
    VIST5_CHECK_GE(ids[i], 0);
    VIST5_CHECK_LT(ids[i], vocab);
    std::copy_n(table.data().data() + static_cast<size_t>(ids[i]) * d, d,
                out.data() + static_cast<size_t>(i) * d);
  }
  auto ti = table.impl();
  Tensor result = MakeResult({n, d}, std::move(out), {table}, nullptr);
  if (result.requires_grad()) {
    auto ri = result.impl();
    result.impl()->backward_fn = [ti, ri, ids, d]() {
      ti->EnsureGrad();
      for (size_t i = 0; i < ids.size(); ++i) {
        float* dst = ti->grad.data() + static_cast<size_t>(ids[i]) * d;
        const float* src = ri->grad.data() + i * d;
        for (int j = 0; j < d; ++j) dst[j] += src[j];
      }
    };
  }
  return result;
}

Tensor CrossEntropyLoss(const Tensor& logits, const std::vector<int>& targets,
                        int ignore_index) {
  VIST5_CHECK_EQ(logits.ndim(), 2);
  const int n = logits.dim(0);
  const int v = logits.dim(1);
  VIST5_CHECK_EQ(static_cast<int>(targets.size()), n);
  // Forward: stable log-softmax + NLL; store softmax probabilities for the
  // backward pass.
  std::vector<float> probs(logits.data().size());
  double loss = 0.0;
  int count = 0;
  for (int i = 0; i < n; ++i) {
    const float* row = logits.data().data() + static_cast<size_t>(i) * v;
    float* prow = probs.data() + static_cast<size_t>(i) * v;
    float maxv = row[0];
    for (int j = 1; j < v; ++j) maxv = std::max(maxv, row[j]);
    float sum = 0.0f;
    for (int j = 0; j < v; ++j) {
      prow[j] = std::exp(row[j] - maxv);
      sum += prow[j];
    }
    const float inv = 1.0f / sum;
    for (int j = 0; j < v; ++j) prow[j] *= inv;
    if (targets[i] != ignore_index) {
      VIST5_CHECK_GE(targets[i], 0);
      VIST5_CHECK_LT(targets[i], v);
      loss -= std::log(std::max(prow[targets[i]], 1e-12f));
      ++count;
    }
  }
  const float mean = count > 0 ? static_cast<float>(loss / count) : 0.0f;
  auto li = logits.impl();
  Tensor result = MakeResult({1}, {mean}, {logits}, nullptr);
  if (result.requires_grad()) {
    auto ri = result.impl();
    result.impl()->backward_fn = [li, ri, targets, ignore_index, n, v, count,
                                  probs = std::move(probs)]() {
      if (count == 0) return;
      li->EnsureGrad();
      const float gscale = ri->grad[0] / count;
      for (int i = 0; i < n; ++i) {
        if (targets[i] == ignore_index) continue;
        const float* prow = probs.data() + static_cast<size_t>(i) * v;
        float* grow = li->grad.data() + static_cast<size_t>(i) * v;
        for (int j = 0; j < v; ++j) grow[j] += gscale * prow[j];
        grow[targets[i]] -= gscale;
      }
    };
  }
  return result;
}

Tensor Reshape(const Tensor& x, std::vector<int> new_shape) {
  int64_t n = 1;
  for (int d : new_shape) n *= d;
  VIST5_CHECK_EQ(n, x.NumElements());
  auto xi = x.impl();
  Tensor result =
      MakeResult(std::move(new_shape), x.data(), {x}, nullptr);
  if (result.requires_grad()) {
    auto ri = result.impl();
    result.impl()->backward_fn = [xi, ri]() {
      xi->EnsureGrad();
      for (size_t i = 0; i < ri->grad.size(); ++i)
        xi->grad[i] += ri->grad[i];
    };
  }
  return result;
}

Tensor SplitHeads(const Tensor& x, int batch, int seq, int heads) {
  VIST5_CHECK_EQ(x.ndim(), 2);
  VIST5_CHECK_EQ(x.dim(0), batch * seq);
  const int d = x.dim(1);
  VIST5_CHECK_EQ(d % heads, 0);
  const int dh = d / heads;
  std::vector<float> out(x.data().size());
  // [b, t, h, dh] -> [b, h, t, dh]
  for (int b = 0; b < batch; ++b) {
    for (int t = 0; t < seq; ++t) {
      const float* src =
          x.data().data() + (static_cast<size_t>(b) * seq + t) * d;
      for (int h = 0; h < heads; ++h) {
        float* dst = out.data() +
                     (((static_cast<size_t>(b) * heads + h) * seq) + t) * dh;
        std::copy_n(src + static_cast<size_t>(h) * dh, dh, dst);
      }
    }
  }
  auto xi = x.impl();
  Tensor result =
      MakeResult({batch, heads, seq, dh}, std::move(out), {x}, nullptr);
  if (result.requires_grad()) {
    auto ri = result.impl();
    result.impl()->backward_fn = [xi, ri, batch, seq, heads, dh, d]() {
      xi->EnsureGrad();
      for (int b = 0; b < batch; ++b) {
        for (int t = 0; t < seq; ++t) {
          float* dst =
              xi->grad.data() + (static_cast<size_t>(b) * seq + t) * d;
          for (int h = 0; h < heads; ++h) {
            const float* src =
                ri->grad.data() +
                (((static_cast<size_t>(b) * heads + h) * seq) + t) * dh;
            for (int j = 0; j < dh; ++j)
              dst[static_cast<size_t>(h) * dh + j] += src[j];
          }
        }
      }
    };
  }
  return result;
}

Tensor MergeHeads(const Tensor& x) {
  VIST5_CHECK_EQ(x.ndim(), 4);
  const int batch = x.dim(0);
  const int heads = x.dim(1);
  const int seq = x.dim(2);
  const int dh = x.dim(3);
  const int d = heads * dh;
  std::vector<float> out(x.data().size());
  for (int b = 0; b < batch; ++b) {
    for (int h = 0; h < heads; ++h) {
      for (int t = 0; t < seq; ++t) {
        const float* src =
            x.data().data() +
            (((static_cast<size_t>(b) * heads + h) * seq) + t) * dh;
        float* dst = out.data() + (static_cast<size_t>(b) * seq + t) * d +
                     static_cast<size_t>(h) * dh;
        std::copy_n(src, dh, dst);
      }
    }
  }
  auto xi = x.impl();
  Tensor result = MakeResult({batch * seq, d}, std::move(out), {x}, nullptr);
  if (result.requires_grad()) {
    auto ri = result.impl();
    result.impl()->backward_fn = [xi, ri, batch, heads, seq, dh, d]() {
      xi->EnsureGrad();
      for (int b = 0; b < batch; ++b) {
        for (int h = 0; h < heads; ++h) {
          for (int t = 0; t < seq; ++t) {
            float* dst =
                xi->grad.data() +
                (((static_cast<size_t>(b) * heads + h) * seq) + t) * dh;
            const float* src = ri->grad.data() +
                               (static_cast<size_t>(b) * seq + t) * d +
                               static_cast<size_t>(h) * dh;
            for (int j = 0; j < dh; ++j) dst[j] += src[j];
          }
        }
      }
    };
  }
  return result;
}

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  VIST5_CHECK(!parts.empty());
  const int d = parts[0].dim(1);
  int total = 0;
  for (const Tensor& p : parts) {
    VIST5_CHECK_EQ(p.ndim(), 2);
    VIST5_CHECK_EQ(p.dim(1), d);
    total += p.dim(0);
  }
  std::vector<float> out;
  out.reserve(static_cast<size_t>(total) * d);
  for (const Tensor& p : parts) {
    out.insert(out.end(), p.data().begin(), p.data().end());
  }
  Tensor result = MakeResult({total, d}, std::move(out), parts, nullptr);
  if (result.requires_grad()) {
    auto ri = result.impl();
    std::vector<std::shared_ptr<TensorImpl>> impls;
    for (const Tensor& p : parts) impls.push_back(p.impl());
    result.impl()->backward_fn = [impls, ri]() {
      size_t offset = 0;
      for (auto& pi : impls) {
        if (pi->requires_grad) {
          pi->EnsureGrad();
          for (size_t i = 0; i < pi->data.size(); ++i)
            pi->grad[i] += ri->grad[offset + i];
        }
        offset += pi->data.size();
      }
    };
  }
  return result;
}

Tensor AppendTime(const Tensor& cache, const Tensor& chunk) {
  VIST5_CHECK(!GradEnabled()) << "AppendTime is an inference-only helper";
  VIST5_CHECK_EQ(chunk.ndim(), 4);
  if (!cache.defined()) return chunk;
  VIST5_CHECK_EQ(cache.ndim(), 4);
  const int b = cache.dim(0);
  const int h = cache.dim(1);
  const int t = cache.dim(2);
  const int dh = cache.dim(3);
  const int s = chunk.dim(2);
  VIST5_CHECK_EQ(chunk.dim(0), b);
  VIST5_CHECK_EQ(chunk.dim(1), h);
  VIST5_CHECK_EQ(chunk.dim(3), dh);
  std::vector<float> out(static_cast<size_t>(b) * h * (t + s) * dh);
  for (int bi = 0; bi < b; ++bi) {
    for (int hi = 0; hi < h; ++hi) {
      const size_t plane = static_cast<size_t>(bi) * h + hi;
      float* dst = out.data() + plane * (t + s) * dh;
      std::copy_n(cache.data().data() + plane * t * dh,
                  static_cast<size_t>(t) * dh, dst);
      std::copy_n(chunk.data().data() + plane * s * dh,
                  static_cast<size_t>(s) * dh, dst + static_cast<size_t>(t) * dh);
    }
  }
  return Tensor({b, h, t + s, dh}, std::move(out));
}

Tensor GatherBatch(const Tensor& x, const std::vector<int>& indices) {
  VIST5_CHECK(!GradEnabled()) << "GatherBatch is an inference-only helper";
  VIST5_CHECK_GE(x.ndim(), 1);
  const int b = x.dim(0);
  const int64_t slab = x.NumElements() / b;
  std::vector<int> shape = x.shape();
  shape[0] = static_cast<int>(indices.size());
  std::vector<float> out(static_cast<size_t>(indices.size()) * slab);
  for (size_t i = 0; i < indices.size(); ++i) {
    VIST5_CHECK_GE(indices[i], 0);
    VIST5_CHECK_LT(indices[i], b);
    std::copy_n(x.data().data() + indices[i] * slab, slab,
                out.data() + static_cast<int64_t>(i) * slab);
  }
  return Tensor(std::move(shape), std::move(out));
}

Tensor GatherRows(const Tensor& x, const std::vector<int>& rows) {
  VIST5_CHECK_EQ(x.ndim(), 2);
  const int d = x.dim(1);
  const int n = static_cast<int>(rows.size());
  std::vector<float> out(static_cast<size_t>(n) * d);
  for (int i = 0; i < n; ++i) {
    VIST5_CHECK_GE(rows[i], 0);
    VIST5_CHECK_LT(rows[i], x.dim(0));
    std::copy_n(x.data().data() + static_cast<size_t>(rows[i]) * d, d,
                out.data() + static_cast<size_t>(i) * d);
  }
  auto xi = x.impl();
  Tensor result = MakeResult({n, d}, std::move(out), {x}, nullptr);
  if (result.requires_grad()) {
    auto ri = result.impl();
    result.impl()->backward_fn = [xi, ri, rows, d]() {
      xi->EnsureGrad();
      for (size_t i = 0; i < rows.size(); ++i) {
        float* dst = xi->grad.data() + static_cast<size_t>(rows[i]) * d;
        const float* src = ri->grad.data() + i * d;
        for (int j = 0; j < d; ++j) dst[j] += src[j];
      }
    };
  }
  return result;
}

Tensor Sum(const Tensor& x) {
  double total = 0.0;
  for (float v : x.data()) total += v;
  auto xi = x.impl();
  Tensor result =
      MakeResult({1}, {static_cast<float>(total)}, {x}, nullptr);
  if (result.requires_grad()) {
    auto ri = result.impl();
    result.impl()->backward_fn = [xi, ri]() {
      xi->EnsureGrad();
      for (size_t i = 0; i < xi->grad.size(); ++i)
        xi->grad[i] += ri->grad[0];
    };
  }
  return result;
}

}  // namespace ops
}  // namespace vist5
