#ifndef VIST5_TENSOR_OPTIMIZER_H_
#define VIST5_TENSOR_OPTIMIZER_H_

#include <vector>

#include "tensor/tensor.h"
#include "util/status.h"

namespace vist5 {

/// AdamW (decoupled weight decay) over a fixed parameter list, matching the
/// paper's DeepSpeedCPUAdam configuration (weight decay 0.01).
class AdamW {
 public:
  struct Options {
    float lr = 5e-4f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float eps = 1e-8f;
    float weight_decay = 0.01f;
  };

  AdamW(std::vector<Tensor> params, Options options);

  /// Applies one update using each parameter's accumulated gradient, then
  /// leaves the gradients untouched (call ZeroGrad separately).
  void Step();

  /// Clears all parameter gradients.
  void ZeroGrad();

  /// Rescales gradients so their global L2 norm is at most `max_norm`.
  /// Returns the pre-clipping norm.
  float ClipGradNorm(float max_norm);

  void set_lr(float lr) { options_.lr = lr; }
  float lr() const { return options_.lr; }
  int64_t step_count() const { return step_; }

  /// Checkpointing accessors: first/second moment buffers, index-aligned
  /// with the constructor's parameter list (docs/CHECKPOINTING.md).
  const std::vector<std::vector<float>>& moments_m() const { return m_; }
  const std::vector<std::vector<float>>& moments_v() const { return v_; }

  /// Restores state captured via step_count()/moments_m()/moments_v() so a
  /// resumed run continues bit-exactly (bias correction depends on the step
  /// count). Every moment buffer must match the current parameter list in
  /// count and per-tensor size; on mismatch the optimizer is unchanged.
  Status ImportState(int64_t step_count, std::vector<std::vector<float>> m,
                     std::vector<std::vector<float>> v);

 private:
  std::vector<Tensor> params_;
  Options options_;
  int64_t step_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

/// Linear warmup to `peak_lr` over `warmup_steps`, then linear decay to zero
/// at `total_steps` (the schedule used in Sec. V-A with warm-up rate 0.1).
class LinearWarmupSchedule {
 public:
  LinearWarmupSchedule(float peak_lr, int64_t warmup_steps,
                       int64_t total_steps)
      : peak_lr_(peak_lr),
        warmup_steps_(warmup_steps),
        total_steps_(total_steps) {}

  float LrAt(int64_t step) const {
    if (total_steps_ <= 0) return peak_lr_;
    if (warmup_steps_ > 0 && step < warmup_steps_) {
      return peak_lr_ * static_cast<float>(step + 1) /
             static_cast<float>(warmup_steps_);
    }
    if (step >= total_steps_) return 0.0f;
    // warmup == total (warmup_fraction 1.0, or rounding pushing them
    // together) leaves no decay region: without this guard the division
    // below is by zero and every post-warmup step gets an inf/NaN LR.
    if (warmup_steps_ >= total_steps_) return peak_lr_;
    const float remain = static_cast<float>(total_steps_ - step) /
                         static_cast<float>(total_steps_ - warmup_steps_);
    return peak_lr_ * remain;
  }

 private:
  float peak_lr_;
  int64_t warmup_steps_;
  int64_t total_steps_;
};

}  // namespace vist5

#endif  // VIST5_TENSOR_OPTIMIZER_H_
