#include "tensor/optimizer.h"

#include <cmath>

namespace vist5 {

AdamW::AdamW(std::vector<Tensor> params, Options options)
    : params_(std::move(params)), options_(options) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Tensor& p : params_) {
    m_.emplace_back(p.data().size(), 0.0f);
    v_.emplace_back(p.data().size(), 0.0f);
  }
}

void AdamW::Step() {
  ++step_;
  const float bias1 = 1.0f - std::pow(options_.beta1, static_cast<float>(step_));
  const float bias2 = 1.0f - std::pow(options_.beta2, static_cast<float>(step_));
  for (size_t pi = 0; pi < params_.size(); ++pi) {
    Tensor& p = params_[pi];
    if (p.grad().empty()) continue;
    std::vector<float>& data = p.mutable_data();
    const std::vector<float>& grad = p.grad();
    std::vector<float>& m = m_[pi];
    std::vector<float>& v = v_[pi];
    for (size_t i = 0; i < data.size(); ++i) {
      const float g = grad[i];
      m[i] = options_.beta1 * m[i] + (1.0f - options_.beta1) * g;
      v[i] = options_.beta2 * v[i] + (1.0f - options_.beta2) * g * g;
      const float mhat = m[i] / bias1;
      const float vhat = v[i] / bias2;
      data[i] -= options_.lr *
                 (mhat / (std::sqrt(vhat) + options_.eps) +
                  options_.weight_decay * data[i]);
    }
  }
}

Status AdamW::ImportState(int64_t step_count, std::vector<std::vector<float>> m,
                          std::vector<std::vector<float>> v) {
  if (step_count < 0) {
    return Status::InvalidArgument("negative optimizer step count");
  }
  if (m.size() != params_.size() || v.size() != params_.size()) {
    return Status::InvalidArgument(
        "optimizer state tensor count mismatch: checkpoint has " +
        std::to_string(m.size()) + "/" + std::to_string(v.size()) +
        " moment buffers, optimizer tracks " +
        std::to_string(params_.size()) + " parameters");
  }
  for (size_t i = 0; i < params_.size(); ++i) {
    const size_t want = params_[i].data().size();
    if (m[i].size() != want || v[i].size() != want) {
      return Status::InvalidArgument(
          "optimizer moment size mismatch at parameter " + std::to_string(i) +
          ": checkpoint " + std::to_string(m[i].size()) + "/" +
          std::to_string(v[i].size()) + " vs " + std::to_string(want));
    }
  }
  step_ = step_count;
  m_ = std::move(m);
  v_ = std::move(v);
  return Status::OK();
}

void AdamW::ZeroGrad() {
  for (Tensor& p : params_) {
    if (!p.grad().empty()) {
      std::fill(p.mutable_grad().begin(), p.mutable_grad().end(), 0.0f);
    }
  }
}

float AdamW::ClipGradNorm(float max_norm) {
  double total = 0.0;
  for (const Tensor& p : params_) {
    for (float g : p.grad()) total += static_cast<double>(g) * g;
  }
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (Tensor& p : params_) {
      if (p.grad().empty()) continue;
      for (float& g : p.mutable_grad()) g *= scale;
    }
  }
  return norm;
}

}  // namespace vist5
