#ifndef VIST5_TENSOR_SIMD_H_
#define VIST5_TENSOR_SIMD_H_

#include <cstdint>

namespace vist5 {
namespace tensor {
namespace simd {

/// Instruction-set backends for the GEMM row kernels (docs/KERNELS.md).
///
/// kScalar is the determinism reference: its translation unit is compiled
/// with strict IEEE flags (no fast-math, no contraction, no
/// auto-vectorization), so every accumulation is the literal source-order
/// sequence. kAvx2 is the AVX2+FMA backend. Both honor the same per-row
/// contracts — one output row per call, accumulation over p ascending —
/// so the rt-level determinism guarantees (bit-identical at any thread
/// count, batched ≡ sequential) hold within each backend; cross-backend
/// float parity is a bounded-tolerance contract, not bit-exactness (the
/// NT dot product uses a different reduction tree under AVX2).
enum class Isa {
  kScalar = 0,
  kAvx2 = 1,
};

/// One resolved set of row-kernel entry points. All float kernels share
/// the calling conventions of the historical ops.cc kernels:
///
///   gemm_row_nt:       crow[N] += arow[K] · B[N,K]^T      (accumulating)
///   gemm_row_nn_zero:  crow[N]  = arow[K] · B[K,N]        (zero-init dest)
///   gemm4_row_nn_zero: c[4,N]   = a[4,K] · B[K,N]         (shared-B tile)
///   gemm8_row_nn_zero: c[8,N]   = a[8,K] · B[K,N]         (shared-B tile)
///
/// The *_i8 variants read an int8 weight matrix B[K,N] with per-column
/// scales[N] (symmetric, zero-point 0) and compute
///   c[r, j] = scales[j] * sum_p fma(a[r, p], float(B[p, j]))
/// i.e. the accumulation runs in float over the raw int8 values and the
/// scale multiplies once at store. Because that per-element chain is the
/// same fma sequence in both backends, int8 results are bit-identical
/// across scalar and AVX2 (docs/KERNELS.md).
struct KernelSet {
  const char* name;
  /// Widest shared-B row group this backend ships (8 for both backends).
  /// GemmRowGrain derives its row floor from the *dispatched* value so
  /// every backend partitions the row space identically — a prerequisite
  /// for the any-thread-count contract holding per ISA.
  int tile_width;

  void (*gemm_row_nt)(const float* arow, const float* b, float* crow, int k,
                      int n);
  void (*gemm_row_nn_zero)(const float* arow, const float* b, float* crow,
                           int k, int n);
  void (*gemm4_row_nn_zero)(const float* a, const float* b, float* c, int k,
                            int n);
  void (*gemm8_row_nn_zero)(const float* a, const float* b, float* c, int k,
                            int n);

  void (*gemm_row_nn_zero_i8)(const float* arow, const int8_t* b,
                              const float* scales, float* crow, int k, int n);
  void (*gemm4_row_nn_zero_i8)(const float* a, const int8_t* b,
                               const float* scales, float* c, int k, int n);
  void (*gemm8_row_nn_zero_i8)(const float* a, const int8_t* b,
                               const float* scales, float* c, int k, int n);
};

/// True when the running CPU can execute the AVX2+FMA backend.
bool CpuSupportsAvx2();

/// The backend currently in effect. Resolved once on first use: the
/// VIST5_ISA environment variable ("scalar" or "avx2") wins when set and
/// supported; otherwise the best supported backend (AVX2 where available).
/// An unsupported or unrecognized request logs a warning and falls back.
Isa ActiveIsa();

/// Kernel table for ActiveIsa(). Cheap (one atomic load after init).
const KernelSet& ActiveKernels();

/// Forces a backend, for tests and benchmarks. Returns false (and changes
/// nothing) when the host cannot run `isa`. Not meant to be called
/// concurrently with in-flight kernels — switch at a quiescent point.
bool SetIsa(Isa isa);

/// "scalar" / "avx2".
const char* IsaName(Isa isa);

namespace detail {
/// Backend factories. Scalar always exists; Avx2KernelSet() returns
/// nullptr on hosts (or builds) without x86 AVX2 support.
const KernelSet* ScalarKernelSet();
const KernelSet* Avx2KernelSet();
}  // namespace detail

}  // namespace simd
}  // namespace tensor
}  // namespace vist5

#endif  // VIST5_TENSOR_SIMD_H_
