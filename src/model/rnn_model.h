#ifndef VIST5_MODEL_RNN_MODEL_H_
#define VIST5_MODEL_RNN_MODEL_H_

#include <memory>

#include "model/seq2seq_model.h"
#include "nn/layers.h"
#include "nn/rnn.h"

namespace vist5 {
namespace model {

/// GRU encoder-decoder with Luong dot-product attention — the Seq2Vis /
/// Seq2Seq baseline of Tables IV, VI and VIII.
class RnnSeq2Seq : public Seq2SeqModel, public nn::Module {
 public:
  struct Config {
    int vocab_size = 0;
    int embed_dim = 64;
    int hidden_dim = 64;
    float dropout = 0.1f;
  };

  RnnSeq2Seq(const Config& config, int pad_id, int eos_id, uint64_t seed);

  std::vector<Tensor> TrainableParameters() const override {
    return Parameters();
  }

  nn::Module* CheckpointModule() override { return this; }

  Tensor BatchLoss(const Batch& batch, bool train, Rng* rng) const override;

  std::vector<int> Generate(const std::vector<int>& src,
                            const GenerationOptions& options) const override;

 private:
  /// One decoder step: consumes the previous token embedding and produces
  /// vocabulary logits via attention over encoder states.
  Tensor StepLogits(const Tensor& x_t, Tensor* hidden,
                    const Tensor& enc_states, int batch, int enc_seq,
                    const std::vector<int>& enc_lengths) const;

  Config config_;
  int pad_id_;
  int eos_id_;
  Rng init_rng_;
  nn::EmbeddingLayer embedding_;
  nn::GruEncoder encoder_;
  nn::GruCell decoder_cell_;
  nn::Linear attn_hidden_;    // combines decoder state ...
  nn::Linear attn_context_;   // ... with the attention context
  nn::Linear out_;
};

}  // namespace model
}  // namespace vist5

#endif  // VIST5_MODEL_RNN_MODEL_H_
