#include "model/retrieval.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "dv/encoding.h"
#include "dv/parser.h"
#include "util/string_util.h"

namespace vist5 {
namespace model {

void ExampleRetriever::Add(Item item) {
  item_tokens_.push_back(SplitWhitespace(ToLower(item.question)));
  items_.push_back(std::move(item));
  finalized_ = false;
}

void ExampleRetriever::Finalize() {
  doc_freq_.clear();
  for (const auto& tokens : item_tokens_) {
    std::set<std::string> unique(tokens.begin(), tokens.end());
    for (const std::string& t : unique) ++doc_freq_[t];
  }
  finalized_ = true;
}

double ExampleRetriever::Idf(const std::string& token) const {
  auto it = doc_freq_.find(token);
  const int df = it == doc_freq_.end() ? 0 : it->second;
  return std::log((items_.size() + 1.0) / (df + 1.0)) + 1.0;
}

std::vector<const ExampleRetriever::Item*> ExampleRetriever::TopK(
    const std::string& question, int k) const {
  const std::vector<std::string> q_tokens =
      SplitWhitespace(ToLower(question));
  std::set<std::string> q_set(q_tokens.begin(), q_tokens.end());
  double q_norm = 0;
  for (const std::string& t : q_set) q_norm += Idf(t) * Idf(t);

  std::vector<std::pair<double, int>> scored;
  for (size_t i = 0; i < items_.size(); ++i) {
    std::set<std::string> d_set(item_tokens_[i].begin(),
                                item_tokens_[i].end());
    double overlap = 0;
    double d_norm = 0;
    for (const std::string& t : d_set) {
      const double w = Idf(t) * Idf(t);
      d_norm += w;
      if (q_set.count(t) > 0) overlap += w;
    }
    const double denom = std::sqrt(q_norm) * std::sqrt(d_norm);
    scored.emplace_back(denom > 0 ? overlap / denom : 0,
                        static_cast<int>(i));
  }
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<const Item*> out;
  for (int i = 0; i < k && i < static_cast<int>(scored.size()); ++i) {
    out.push_back(&items_[static_cast<size_t>(scored[static_cast<size_t>(i)]
                                                  .second)]);
  }
  return out;
}

namespace {

/// Whether `name` (underscores spaced) is mentioned in the question.
bool Mentioned(const std::string& name, const std::string& question_lower) {
  if (Contains(question_lower, name)) return true;
  const std::string spaced = ReplaceAll(name, "_", " ");
  return Contains(question_lower, spaced);
}

bool ColumnIsCategorical(const db::Column& c) {
  return c.type == db::ValueType::kText || c.name == "year";
}

/// Picks a column of `table` to substitute for `old_column`: a mentioned
/// column first, then one of the same kind (categorical vs numeric), then
/// the first non-id column.
std::string PickColumn(const db::Table& table, const std::string& old_column,
                       bool want_categorical,
                       const std::string& question_lower) {
  for (const db::Column& c : table.columns()) {
    if (EndsWith(c.name, "_id")) continue;
    if (Mentioned(c.name, question_lower)) return c.name;
  }
  for (const db::Column& c : table.columns()) {
    if (EndsWith(c.name, "_id")) continue;
    if (ColumnIsCategorical(c) == want_categorical) return c.name;
  }
  for (const db::Column& c : table.columns()) {
    if (!EndsWith(c.name, "_id")) return c.name;
  }
  return old_column;
}

}  // namespace

dv::DvQuery AdaptQueryToSchema(const dv::DvQuery& prototype,
                               const std::string& question,
                               const db::Database& database) {
  dv::DvQuery q = prototype;
  const std::string question_lower = ToLower(question);

  // Target table: prefer a table mentioned in the question.
  const db::Table* target = nullptr;
  for (const db::Table& t : database.tables()) {
    if (Mentioned(t.name(), question_lower)) {
      target = &t;
      break;
    }
  }
  if (target == nullptr && !database.tables().empty()) {
    target = &database.tables()[0];
  }
  if (target == nullptr) return q;

  // Joins survive only when the target database has a matching link.
  if (q.join.has_value()) {
    const db::ForeignKey* fk = nullptr;
    const db::Table* other = nullptr;
    for (const db::Table& t : database.tables()) {
      if (&t == target) continue;
      fk = database.FindLink(target->name(), t.name());
      if (fk != nullptr) {
        other = &t;
        break;
      }
    }
    if (fk != nullptr && other != nullptr) {
      const bool target_is_to = fk->to_table == target->name();
      q.join->table = other->name();
      q.join->left = {target->name(),
                      target_is_to ? fk->to_column : fk->from_column};
      q.join->right = {other->name(),
                       target_is_to ? fk->from_column : fk->to_column};
    } else {
      q.join.reset();
    }
  }

  const std::string old_table = q.from_table;
  q.from_table = target->name();
  const db::Table* join_table =
      q.join ? database.FindTable(q.join->table) : nullptr;

  auto remap = [&](dv::ColumnRef* ref, bool want_categorical) {
    const db::Table* home = target;
    if (join_table != nullptr && ref->table != old_table &&
        ref->table != target->name()) {
      home = join_table;
    }
    if (home->ColumnIndex(ref->column) < 0) {
      ref->column = PickColumn(*home, ref->column, want_categorical,
                               question_lower);
    }
    ref->table = home->name();
  };

  for (size_t i = 0; i < q.select.size(); ++i) {
    remap(&q.select[i].col, /*want_categorical=*/i == 0);
  }
  if (q.group_by.has_value()) {
    // Keep the group key aligned with the first select item (x axis).
    q.group_by = q.select[0].col;
  }
  if (q.order_by.has_value() && !q.order_by->target.star) {
    // Re-point the sort target at whichever select item shares its
    // aggregate.
    for (const auto& e : q.select) {
      if (e.agg == q.order_by->target.agg) {
        q.order_by->target = e;
        break;
      }
    }
  }
  for (auto& pred : q.where) {
    remap(&pred.col, /*want_categorical=*/!pred.is_number);
    // The literal is kept verbatim from the exemplar: an in-context model
    // cannot execute the database to discover which values exist, so
    // transplanted filters frequently reference stale values — one of the
    // characteristic failure modes of similarity prompting.
  }
  return q;
}

void FewShotRetrievalModel::Fit(std::vector<ExampleRetriever::Item> train) {
  for (auto& item : train) retriever_.Add(std::move(item));
  retriever_.Finalize();
}

std::string FewShotRetrievalModel::Predict(
    const std::string& question, const db::Database& database) const {
  const auto shots = retriever_.TopK(question, shots_);
  if (shots.empty()) return "";
  // The nearest exemplar dominates in similarity prompting; later shots
  // serve as fallbacks when the first fails to parse.
  for (const ExampleRetriever::Item* shot : shots) {
    auto parsed = dv::ParseDvQuery(shot->query);
    if (!parsed.ok()) continue;
    return AdaptQueryToSchema(*parsed, question, database).ToString();
  }
  return shots[0]->query;
}

}  // namespace model
}  // namespace vist5
