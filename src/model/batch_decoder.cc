#include "model/batch_decoder.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/ops.h"

namespace vist5 {
namespace model {

size_t EncodedPrefix::ByteSize() const {
  const auto tensor_bytes = [](const Tensor& t) {
    return t.defined()
               ? static_cast<size_t>(t.NumElements()) * sizeof(float)
               : size_t{0};
  };
  size_t bytes = tokens.size() * sizeof(int);
  bytes += tensor_bytes(memory);
  for (const nn::DecodeState::LayerCache& layer : state.layers) {
    bytes += tensor_bytes(layer.cross_k) + tensor_bytes(layer.cross_v);
  }
  return bytes;
}

std::shared_ptr<const EncodedPrefix> TransformerSeq2Seq::EncodePrefix(
    const std::vector<int>& src, WeightDtype dtype) const {
  VIST5_CHECK(!src.empty());
  NoGradGuard guard;
  WeightDtypeGuard dtype_guard(dtype);
  auto block = std::make_shared<EncodedPrefix>();
  block->tokens = src;
  block->dtype = dtype;
  const int src_len = static_cast<int>(src.size());
  const std::vector<int> lengths = {src_len};
  block->memory = transformer_->Encode(src, 1, src_len, lengths,
                                       /*train=*/false, nullptr);
  block->state = transformer_->BeginDecode(block->memory, 1, src_len,
                                           lengths);
  return block;
}

void ContinuousDecoder::Admit(uint64_t id, const std::vector<int>& src,
                              const GenerationOptions& options,
                              Clock::time_point deadline,
                              const EncodedPrefix* prefill) {
  VIST5_CHECK(options.beam_size <= 1 && options.temperature <= 0.0f)
      << "ContinuousDecoder batches greedy requests only";
  VIST5_CHECK(!src.empty());
  if (rows_.empty()) {
    batch_dtype_ = options.weight_dtype;
  } else {
    VIST5_CHECK(options.weight_dtype == batch_dtype_)
        << "weight_dtype " << WeightDtypeName(options.weight_dtype)
        << " cannot join a " << WeightDtypeName(batch_dtype_) << " batch";
  }
  NoGradGuard guard;
  WeightDtypeGuard dtype_guard(batch_dtype_);
  nn::DecodeState fresh;
  if (prefill != nullptr) {
    VIST5_CHECK(prefill->tokens == src)
        << "cached prefix block does not hold this request's tokens";
    VIST5_CHECK(prefill->dtype == batch_dtype_)
        << "cached prefix block computed at "
        << WeightDtypeName(prefill->dtype) << " cannot join a "
        << WeightDtypeName(batch_dtype_) << " batch";
    // Splice: copy the state *structure*; its tensor handles alias the
    // block's storage. The loop below installs fresh self caches in this
    // copy only, and every later cross-cache mutation (Reorder's
    // GatherBatch, MergeFrom's ConcatBatch) replaces handles with copies,
    // so the shared block stays bit-exact for the next consumer.
    fresh = prefill->state;
  } else {
    const int src_len = static_cast<int>(src.size());
    const std::vector<int> lengths = {src_len};
    Tensor memory = model_->transformer().Encode(src, 1, src_len, lengths,
                                                 /*train=*/false, nullptr);
    fresh = model_->transformer().BeginDecode(memory, 1, src_len, lengths);
  }
  // Preallocate the self-attention caches to the row's full step budget.
  // The zero capacity beyond the valid length is masked inside attention,
  // and it lets every subsequent decode step write keys/values in place
  // instead of reallocating the whole cache (ops::ScatterTimeInPlace).
  const int capacity = std::max(options.max_len, 1);
  for (nn::DecodeState::LayerCache& layer : fresh.layers) {
    const int heads = layer.cross_k.dim(1);
    const int dh = layer.cross_k.dim(3);
    layer.self_k = Tensor({1, heads, capacity, dh});
    layer.self_v = Tensor({1, heads, capacity, dh});
  }
  state_.MergeFrom(std::move(fresh));
  Row row;
  row.id = id;
  row.options = options;
  row.deadline = deadline;
  row.prev = model_->pad_id();
  rows_.push_back(std::move(row));
}

void ContinuousDecoder::Evict(const std::vector<int>& survivors) {
  if (static_cast<int>(survivors.size()) == active()) return;
  state_.Reorder(survivors);
  std::vector<Row> kept;
  kept.reserve(survivors.size());
  for (int idx : survivors) {
    kept.push_back(std::move(rows_[static_cast<size_t>(idx)]));
  }
  rows_ = std::move(kept);
}

std::vector<ContinuousDecoder::Finished> ContinuousDecoder::Step(
    std::vector<Emitted>* emitted) {
  std::vector<Finished> done;
  if (rows_.empty()) return done;
  VIST5_TRACE_SPAN("model/batch_decode_step");
  // Covers the pre-step sweep too: its Evict reorders KV caches through
  // inference-only ops (GatherBatch), not just the decode step below.
  NoGradGuard guard;
  WeightDtypeGuard dtype_guard(batch_dtype_);

  // Pre-step sweep: rows past their deadline (or with no step budget at
  // all) leave with their best-so-far tokens before paying for another
  // decode step.
  const Clock::time_point now = Clock::now();
  std::vector<int> survivors;
  survivors.reserve(rows_.size());
  for (int b = 0; b < active(); ++b) {
    Row& row = rows_[static_cast<size_t>(b)];
    if (static_cast<int>(row.out.size()) >= row.options.max_len) {
      done.push_back({row.id, std::move(row.out), false});
    } else if (row.deadline <= now) {
      done.push_back({row.id, std::move(row.out), true});
    } else {
      survivors.push_back(b);
    }
  }
  Evict(survivors);
  if (rows_.empty()) return done;

  std::vector<int> next_ids(rows_.size());
  for (size_t b = 0; b < rows_.size(); ++b) next_ids[b] = rows_[b].prev;
  Tensor hidden = model_->transformer().DecodeStepRagged(next_ids, &state_);
  Tensor logits = model_->transformer().Logits(hidden);  // [B, V]
  const int vocab = logits.dim(1);
  const float* data = logits.data().data();

  survivors.clear();
  for (int b = 0; b < active(); ++b) {
    Row& row = rows_[static_cast<size_t>(b)];
    const int next = BestAllowedToken(data + static_cast<size_t>(b) * vocab,
                                      vocab, row.options.allowed);
    // Same termination rule as GreedyDecode: stop without emitting on EOS
    // or an exhausted constraint, otherwise emit and stop once max_len
    // tokens are out.
    bool finished = next < 0 || next == model_->eos_id();
    if (!finished) {
      row.out.push_back(next);
      row.prev = next;
      if (emitted != nullptr) emitted->push_back({row.id, next});
      finished = static_cast<int>(row.out.size()) >= row.options.max_len;
    }
    if (finished) {
      done.push_back({row.id, std::move(row.out), false});
    } else {
      survivors.push_back(b);
    }
  }
  Evict(survivors);
  return done;
}

std::vector<std::vector<int>> TransformerSeq2Seq::GenerateBatch(
    const std::vector<std::vector<int>>& srcs,
    const GenerationOptions& options) const {
  std::vector<std::vector<int>> out(srcs.size());
  if (srcs.empty()) return out;
  if (options.beam_size > 1 || options.temperature > 0.0f ||
      !options.use_kv_cache) {
    for (size_t i = 0; i < srcs.size(); ++i) {
      out[i] = Generate(srcs[i], options);
    }
    return out;
  }
  VIST5_TRACE_SPAN("model/generate_batch");
  static obs::Counter* batched_calls = obs::GetCounter("decode/batched_calls");
  static obs::Counter* tokens = obs::GetCounter("decode/tokens");
  const auto deadline =
      options.deadline_ms > 0
          ? ContinuousDecoder::Clock::now() +
                std::chrono::milliseconds(options.deadline_ms)
          : ContinuousDecoder::Clock::time_point::max();
  ContinuousDecoder decoder(this);
  for (size_t i = 0; i < srcs.size(); ++i) {
    decoder.Admit(static_cast<uint64_t>(i), srcs[i], options, deadline);
  }
  while (decoder.active() > 0) {
    for (ContinuousDecoder::Finished& f : decoder.Step()) {
      tokens->Add(static_cast<int64_t>(f.tokens.size()));
      out[static_cast<size_t>(f.id)] = std::move(f.tokens);
    }
  }
  batched_calls->Add();
  return out;
}

}  // namespace model
}  // namespace vist5
