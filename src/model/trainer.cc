#include "model/trainer.h"

#include <algorithm>
#include <chrono>

#include "model/checkpoint.h"
#include "nn/module.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rt/thread_pool.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/runtime.h"

namespace vist5 {
namespace model {
namespace {

int CountBatchTokens(const Batch& batch) {
  int tokens = 0;
  for (int n : batch.enc_lengths) tokens += n;
  for (int n : batch.dec_lengths) tokens += n;
  return tokens;
}

// Target tokens that actually contribute loss (non-ignored positions).
int64_t CountTargetTokens(const Batch& batch) {
  int64_t tokens = 0;
  for (int t : batch.dec_target) {
    if (t != kIgnoreIndex) ++tokens;
  }
  return tokens;
}

// The config fields a checkpoint fingerprints: resuming under different
// values would silently change the trajectory (docs/CHECKPOINTING.md).
TrainState FingerprintOptions(const TrainOptions& options, int pad_id) {
  TrainState state;
  state.total_steps = options.steps;
  state.seed = options.seed;
  state.batch_size = options.batch_size;
  state.grad_accum_shards =
      std::clamp(options.grad_accum_shards, 1, options.batch_size);
  state.max_src_len = options.max_src_len;
  state.max_tgt_len = options.max_tgt_len;
  state.pad_id = pad_id;
  state.peak_lr = options.peak_lr;
  state.warmup_fraction = options.warmup_fraction;
  state.weight_decay = options.weight_decay;
  state.clip_norm = options.clip_norm;
  return state;
}

void CheckFingerprintMatches(const TrainState& state,
                             const TrainState& expected,
                             const std::string& dir) {
  VIST5_CHECK(state.total_steps == expected.total_steps &&
              state.seed == expected.seed &&
              state.batch_size == expected.batch_size &&
              state.grad_accum_shards == expected.grad_accum_shards &&
              state.max_src_len == expected.max_src_len &&
              state.max_tgt_len == expected.max_tgt_len &&
              state.pad_id == expected.pad_id &&
              state.peak_lr == expected.peak_lr &&
              state.warmup_fraction == expected.warmup_fraction &&
              state.weight_decay == expected.weight_decay &&
              state.clip_norm == expected.clip_norm)
      << "checkpoint in " << dir
      << " was written under a different training configuration; refusing "
         "to resume (wipe the directory or set TrainOptions::resume=false "
         "to restart)";
}

}  // namespace

TrainStats TrainSeq2Seq(Seq2SeqModel* model, const std::vector<SeqPair>& pairs,
                        int pad_id, const TrainOptions& options) {
  VIST5_CHECK(!pairs.empty());
  TuneAllocatorForTraining();
  Rng rng(options.seed);
  AdamW::Options opt_options;
  opt_options.lr = options.peak_lr;
  opt_options.weight_decay = options.weight_decay;
  AdamW optimizer(model->TrainableParameters(), opt_options);
  LinearWarmupSchedule schedule(
      options.peak_lr,
      static_cast<int64_t>(options.steps * options.warmup_fraction),
      options.steps);

  std::vector<double> weights;
  weights.reserve(pairs.size());
  bool uniform = true;
  for (const SeqPair& p : pairs) {
    weights.push_back(p.weight);
    uniform = uniform && p.weight == pairs[0].weight;
  }

  // Trainer telemetry: resolved once per run, published every step.
  obs::Counter* steps_total = obs::GetCounter("trainer/steps");
  obs::Counter* tokens_total = obs::GetCounter("trainer/tokens");
  obs::Gauge* loss_gauge = obs::GetGauge("trainer/loss");
  obs::Gauge* grad_norm_gauge = obs::GetGauge("trainer/grad_norm");
  obs::Gauge* lr_gauge = obs::GetGauge("trainer/lr");
  obs::Gauge* tps_gauge = obs::GetGauge("trainer/tokens_per_sec");
  obs::Gauge* rss_gauge = obs::GetGauge("process/peak_rss_bytes");
  obs::Histogram* step_ms_hist = obs::GetHistogram("trainer/step_ms");
  obs::GetGauge("trainer/grad_accum_shards")
      ->Set(std::clamp(options.grad_accum_shards, 1, options.batch_size));
  obs::GetGauge("trainer/threads")->Set(rt::MaxThreads());

  // Crash-safe checkpointing: resume from the newest valid checkpoint in
  // checkpoint_dir, restoring parameters, AdamW moments/step, the RNG
  // (sampler + dropout) stream, and the running stats accumulators, so the
  // continued run is bit-identical to one that was never interrupted.
  const bool ckpt_enabled = !options.checkpoint_dir.empty();
  nn::Module* module = nullptr;
  if (ckpt_enabled) {
    module = model->CheckpointModule();
    VIST5_CHECK(module != nullptr)
        << "TrainOptions::checkpoint_dir requires a module-backed model";
  }

  TrainStats stats;
  stats.steps = options.steps;
  double tail_loss = 0;
  int tail_count = 0;
  int start_step = 0;
  if (ckpt_enabled && options.resume) {
    TrainState restored;
    const Status resumed =
        ResumeTrainState(module, &restored, options.checkpoint_dir);
    if (resumed.ok()) {
      CheckFingerprintMatches(restored, FingerprintOptions(options, pad_id),
                              options.checkpoint_dir);
      VIST5_CHECK_OK(optimizer.ImportState(restored.opt_step,
                                           std::move(restored.opt_m),
                                           std::move(restored.opt_v)));
      rng.SetState(restored.rng_state);
      start_step = static_cast<int>(restored.next_step);
      stats.first_loss = restored.first_loss;
      tail_loss = restored.tail_loss;
      tail_count = static_cast<int>(restored.tail_count);
      VIST5_LOG(Info) << "resumed training from step " << start_step << "/"
                      << options.steps << " (" << options.checkpoint_dir
                      << ")";
    } else if (resumed.code() != StatusCode::kNotFound) {
      // Checkpoints exist but none validated: starting over would silently
      // discard the run, so fail loudly instead.
      VIST5_CHECK(false) << "cannot resume from " << options.checkpoint_dir
                         << ": " << resumed.ToString();
    }
  }
  stats.start_step = start_step;

  const int tail_start = options.steps - std::max(1, options.steps / 10);
  for (int step = start_step; step < options.steps; ++step) {
    VIST5_TRACE_SPAN("trainer/step");
    const auto step_start = std::chrono::steady_clock::now();
    std::vector<const SeqPair*> batch_items;
    batch_items.reserve(static_cast<size_t>(options.batch_size));
    for (int b = 0; b < options.batch_size; ++b) {
      const int idx = uniform
                          ? rng.UniformInt(static_cast<int>(pairs.size()))
                          : rng.Categorical(weights);
      batch_items.push_back(&pairs[static_cast<size_t>(idx)]);
    }
    const int shards =
        std::clamp(options.grad_accum_shards, 1, options.batch_size);
    optimizer.ZeroGrad();
    float loss_value = 0.0f;
    int batch_tokens = 0;
    if (shards <= 1) {
      Batch batch = MakeBatch(batch_items, pad_id, options.max_src_len,
                              options.max_tgt_len);
      Tensor loss = model->BatchLoss(batch, /*train=*/true, &rng);
      loss_value = loss.item();
      loss.Backward();
      loss.DetachGraph();
      batch_tokens = CountBatchTokens(batch);
    } else {
      // Micro-batch gradient accumulation: contiguous shards processed in
      // index order, each loss scaled by its target-token share so the sum
      // reproduces the whole-batch token mean. The serial shard fold is the
      // fixed-order reduction tree — gradients accumulate in the same order
      // no matter how many threads the intra-op kernels use.
      std::vector<Batch> shard_batches;
      shard_batches.reserve(static_cast<size_t>(shards));
      int64_t total_targets = 0;
      const int n = static_cast<int>(batch_items.size());
      for (int s = 0; s < shards; ++s) {
        const int lo = static_cast<int>(static_cast<int64_t>(n) * s / shards);
        const int hi =
            static_cast<int>(static_cast<int64_t>(n) * (s + 1) / shards);
        if (lo == hi) continue;
        std::vector<const SeqPair*> shard_items(
            batch_items.begin() + lo, batch_items.begin() + hi);
        shard_batches.push_back(MakeBatch(shard_items, pad_id,
                                          options.max_src_len,
                                          options.max_tgt_len));
        total_targets += CountTargetTokens(shard_batches.back());
      }
      for (const Batch& shard : shard_batches) {
        Tensor loss = model->BatchLoss(shard, /*train=*/true, &rng);
        const float frac =
            total_targets > 0
                ? static_cast<float>(CountTargetTokens(shard)) / total_targets
                : 0.0f;
        Tensor scaled = ops::Scale(loss, frac);
        loss_value += scaled.item();
        scaled.Backward();
        scaled.DetachGraph();
        batch_tokens += CountBatchTokens(shard);
      }
    }
    const float grad_norm = optimizer.ClipGradNorm(options.clip_norm);
    optimizer.set_lr(schedule.LrAt(step));
    optimizer.Step();

    if (step == 0) stats.first_loss = loss_value;
    if (step >= tail_start) {
      tail_loss += loss_value;
      ++tail_count;
    }

    const double step_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      step_start)
            .count();
    StepInfo info;
    info.step = step;
    info.total_steps = options.steps;
    info.loss = loss_value;
    info.grad_norm = grad_norm;
    info.lr = optimizer.lr();
    info.batch_tokens = batch_tokens;
    info.step_ms = step_seconds * 1e3;
    info.tokens_per_sec =
        step_seconds > 0 ? info.batch_tokens / step_seconds : 0;
    info.peak_rss_bytes = obs::PeakRssBytes();

    steps_total->Add();
    tokens_total->Add(info.batch_tokens);
    loss_gauge->Set(info.loss);
    grad_norm_gauge->Set(info.grad_norm);
    lr_gauge->Set(info.lr);
    tps_gauge->Set(info.tokens_per_sec);
    rss_gauge->UpdateMax(static_cast<double>(info.peak_rss_bytes));
    step_ms_hist->Observe(info.step_ms);

    if (options.observer) options.observer(info);
    if (options.log_every > 0 && step % options.log_every == 0) {
      VIST5_LOG(Info) << "step " << step << "/" << options.steps << " loss "
                      << info.loss << " grad_norm " << info.grad_norm
                      << " lr " << info.lr << " tok/s "
                      << static_cast<int64_t>(info.tokens_per_sec);
    }

    ++stats.steps_this_run;
    if (ckpt_enabled) {
      const bool budget_reached = options.max_steps_per_run > 0 &&
                                  stats.steps_this_run >=
                                      options.max_steps_per_run;
      const bool last_step = step + 1 == options.steps;
      // Cadence is anchored at absolute step indices so a resumed run
      // checkpoints at the same steps an uninterrupted one would.
      const bool on_cadence = options.checkpoint_every > 0 &&
                              (step + 1) % options.checkpoint_every == 0;
      if (budget_reached || last_step || on_cadence) {
        TrainState state = FingerprintOptions(options, pad_id);
        state.next_step = step + 1;
        state.first_loss = stats.first_loss;
        state.tail_loss = tail_loss;
        state.tail_count = tail_count;
        state.opt_step = optimizer.step_count();
        state.opt_m = optimizer.moments_m();
        state.opt_v = optimizer.moments_v();
        state.rng_state = rng.State();
        const Status saved = SaveTrainCheckpoint(
            *module, state, options.checkpoint_dir, options.keep_last);
        VIST5_CHECK(saved.ok())
            << "checkpoint save failed: " << saved.ToString();
      }
      if (budget_reached) break;
    }
  }
  stats.final_loss =
      tail_count > 0 ? static_cast<float>(tail_loss / tail_count) : 0.0f;
  return stats;
}

}  // namespace model
}  // namespace vist5
