#include "model/trainer.h"

#include "util/logging.h"
#include "util/runtime.h"

namespace vist5 {
namespace model {

TrainStats TrainSeq2Seq(Seq2SeqModel* model, const std::vector<SeqPair>& pairs,
                        int pad_id, const TrainOptions& options) {
  VIST5_CHECK(!pairs.empty());
  TuneAllocatorForTraining();
  Rng rng(options.seed);
  AdamW::Options opt_options;
  opt_options.lr = options.peak_lr;
  opt_options.weight_decay = options.weight_decay;
  AdamW optimizer(model->TrainableParameters(), opt_options);
  LinearWarmupSchedule schedule(
      options.peak_lr,
      static_cast<int64_t>(options.steps * options.warmup_fraction),
      options.steps);

  std::vector<double> weights;
  weights.reserve(pairs.size());
  bool uniform = true;
  for (const SeqPair& p : pairs) {
    weights.push_back(p.weight);
    uniform = uniform && p.weight == pairs[0].weight;
  }

  TrainStats stats;
  stats.steps = options.steps;
  double tail_loss = 0;
  int tail_count = 0;
  const int tail_start = options.steps - std::max(1, options.steps / 10);
  for (int step = 0; step < options.steps; ++step) {
    std::vector<const SeqPair*> batch_items;
    batch_items.reserve(static_cast<size_t>(options.batch_size));
    for (int b = 0; b < options.batch_size; ++b) {
      const int idx = uniform
                          ? rng.UniformInt(static_cast<int>(pairs.size()))
                          : rng.Categorical(weights);
      batch_items.push_back(&pairs[static_cast<size_t>(idx)]);
    }
    Batch batch = MakeBatch(batch_items, pad_id, options.max_src_len,
                            options.max_tgt_len);
    optimizer.ZeroGrad();
    Tensor loss = model->BatchLoss(batch, /*train=*/true, &rng);
    const float loss_value = loss.item();
    loss.Backward();
    loss.DetachGraph();
    optimizer.ClipGradNorm(options.clip_norm);
    optimizer.set_lr(schedule.LrAt(step));
    optimizer.Step();

    if (step == 0) stats.first_loss = loss_value;
    if (step >= tail_start) {
      tail_loss += loss_value;
      ++tail_count;
    }
    if (options.log_every > 0 && step % options.log_every == 0) {
      VIST5_LOG(Info) << "step " << step << " loss " << loss_value << " lr "
                      << optimizer.lr();
    }
  }
  stats.final_loss =
      tail_count > 0 ? static_cast<float>(tail_loss / tail_count) : 0.0f;
  return stats;
}

}  // namespace model
}  // namespace vist5
