#include "model/trainer.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "rt/thread_pool.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/runtime.h"

namespace vist5 {
namespace model {
namespace {

int CountBatchTokens(const Batch& batch) {
  int tokens = 0;
  for (int n : batch.enc_lengths) tokens += n;
  for (int n : batch.dec_lengths) tokens += n;
  return tokens;
}

// Target tokens that actually contribute loss (non-ignored positions).
int64_t CountTargetTokens(const Batch& batch) {
  int64_t tokens = 0;
  for (int t : batch.dec_target) {
    if (t != kIgnoreIndex) ++tokens;
  }
  return tokens;
}

}  // namespace

TrainStats TrainSeq2Seq(Seq2SeqModel* model, const std::vector<SeqPair>& pairs,
                        int pad_id, const TrainOptions& options) {
  VIST5_CHECK(!pairs.empty());
  TuneAllocatorForTraining();
  Rng rng(options.seed);
  AdamW::Options opt_options;
  opt_options.lr = options.peak_lr;
  opt_options.weight_decay = options.weight_decay;
  AdamW optimizer(model->TrainableParameters(), opt_options);
  LinearWarmupSchedule schedule(
      options.peak_lr,
      static_cast<int64_t>(options.steps * options.warmup_fraction),
      options.steps);

  std::vector<double> weights;
  weights.reserve(pairs.size());
  bool uniform = true;
  for (const SeqPair& p : pairs) {
    weights.push_back(p.weight);
    uniform = uniform && p.weight == pairs[0].weight;
  }

  // Trainer telemetry: resolved once per run, published every step.
  obs::Counter* steps_total = obs::GetCounter("trainer/steps");
  obs::Counter* tokens_total = obs::GetCounter("trainer/tokens");
  obs::Gauge* loss_gauge = obs::GetGauge("trainer/loss");
  obs::Gauge* grad_norm_gauge = obs::GetGauge("trainer/grad_norm");
  obs::Gauge* lr_gauge = obs::GetGauge("trainer/lr");
  obs::Gauge* tps_gauge = obs::GetGauge("trainer/tokens_per_sec");
  obs::Gauge* rss_gauge = obs::GetGauge("process/peak_rss_bytes");
  obs::Histogram* step_ms_hist = obs::GetHistogram("trainer/step_ms");
  obs::GetGauge("trainer/grad_accum_shards")
      ->Set(std::clamp(options.grad_accum_shards, 1, options.batch_size));
  obs::GetGauge("trainer/threads")->Set(rt::MaxThreads());

  TrainStats stats;
  stats.steps = options.steps;
  double tail_loss = 0;
  int tail_count = 0;
  const int tail_start = options.steps - std::max(1, options.steps / 10);
  for (int step = 0; step < options.steps; ++step) {
    VIST5_TRACE_SPAN("trainer/step");
    const auto step_start = std::chrono::steady_clock::now();
    std::vector<const SeqPair*> batch_items;
    batch_items.reserve(static_cast<size_t>(options.batch_size));
    for (int b = 0; b < options.batch_size; ++b) {
      const int idx = uniform
                          ? rng.UniformInt(static_cast<int>(pairs.size()))
                          : rng.Categorical(weights);
      batch_items.push_back(&pairs[static_cast<size_t>(idx)]);
    }
    const int shards =
        std::clamp(options.grad_accum_shards, 1, options.batch_size);
    optimizer.ZeroGrad();
    float loss_value = 0.0f;
    int batch_tokens = 0;
    if (shards <= 1) {
      Batch batch = MakeBatch(batch_items, pad_id, options.max_src_len,
                              options.max_tgt_len);
      Tensor loss = model->BatchLoss(batch, /*train=*/true, &rng);
      loss_value = loss.item();
      loss.Backward();
      loss.DetachGraph();
      batch_tokens = CountBatchTokens(batch);
    } else {
      // Micro-batch gradient accumulation: contiguous shards processed in
      // index order, each loss scaled by its target-token share so the sum
      // reproduces the whole-batch token mean. The serial shard fold is the
      // fixed-order reduction tree — gradients accumulate in the same order
      // no matter how many threads the intra-op kernels use.
      std::vector<Batch> shard_batches;
      shard_batches.reserve(static_cast<size_t>(shards));
      int64_t total_targets = 0;
      const int n = static_cast<int>(batch_items.size());
      for (int s = 0; s < shards; ++s) {
        const int lo = static_cast<int>(static_cast<int64_t>(n) * s / shards);
        const int hi =
            static_cast<int>(static_cast<int64_t>(n) * (s + 1) / shards);
        if (lo == hi) continue;
        std::vector<const SeqPair*> shard_items(
            batch_items.begin() + lo, batch_items.begin() + hi);
        shard_batches.push_back(MakeBatch(shard_items, pad_id,
                                          options.max_src_len,
                                          options.max_tgt_len));
        total_targets += CountTargetTokens(shard_batches.back());
      }
      for (const Batch& shard : shard_batches) {
        Tensor loss = model->BatchLoss(shard, /*train=*/true, &rng);
        const float frac =
            total_targets > 0
                ? static_cast<float>(CountTargetTokens(shard)) / total_targets
                : 0.0f;
        Tensor scaled = ops::Scale(loss, frac);
        loss_value += scaled.item();
        scaled.Backward();
        scaled.DetachGraph();
        batch_tokens += CountBatchTokens(shard);
      }
    }
    const float grad_norm = optimizer.ClipGradNorm(options.clip_norm);
    optimizer.set_lr(schedule.LrAt(step));
    optimizer.Step();

    if (step == 0) stats.first_loss = loss_value;
    if (step >= tail_start) {
      tail_loss += loss_value;
      ++tail_count;
    }

    const double step_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      step_start)
            .count();
    StepInfo info;
    info.step = step;
    info.total_steps = options.steps;
    info.loss = loss_value;
    info.grad_norm = grad_norm;
    info.lr = optimizer.lr();
    info.batch_tokens = batch_tokens;
    info.step_ms = step_seconds * 1e3;
    info.tokens_per_sec =
        step_seconds > 0 ? info.batch_tokens / step_seconds : 0;
    info.peak_rss_bytes = obs::PeakRssBytes();

    steps_total->Add();
    tokens_total->Add(info.batch_tokens);
    loss_gauge->Set(info.loss);
    grad_norm_gauge->Set(info.grad_norm);
    lr_gauge->Set(info.lr);
    tps_gauge->Set(info.tokens_per_sec);
    rss_gauge->UpdateMax(static_cast<double>(info.peak_rss_bytes));
    step_ms_hist->Observe(info.step_ms);

    if (options.observer) options.observer(info);
    if (options.log_every > 0 && step % options.log_every == 0) {
      VIST5_LOG(Info) << "step " << step << "/" << options.steps << " loss "
                      << info.loss << " grad_norm " << info.grad_norm
                      << " lr " << info.lr << " tok/s "
                      << static_cast<int64_t>(info.tokens_per_sec);
    }
  }
  stats.final_loss =
      tail_count > 0 ? static_cast<float>(tail_loss / tail_count) : 0.0f;
  return stats;
}

}  // namespace model
}  // namespace vist5
