#ifndef VIST5_MODEL_CHECKPOINT_H_
#define VIST5_MODEL_CHECKPOINT_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "nn/module.h"
#include "util/status.h"

namespace vist5 {
namespace model {

/// Writes every named parameter of `module` (including frozen ones) to
/// `path` in the repo's binary checkpoint format: magic + version header,
/// name/shape/data records, and (since format v2) a trailing CRC32 over the
/// whole record stream. The write is atomic (temp file + fsync + rename),
/// so a crash mid-save never corrupts an existing checkpoint.
Status SaveCheckpoint(const nn::Module& module, const std::string& path);

/// Loads a checkpoint into `module`. Every stored parameter must exist in
/// the module with the SAME shape (not merely the same element count);
/// parameters of the module that are absent from the file are left
/// untouched (this is how LoRA adapters load a base checkpoint). v2 files
/// are CRC-validated before any record is parsed; legacy v1 files (no CRC)
/// still load. Validation is transactional: on any error the module is
/// unchanged.
Status LoadCheckpoint(nn::Module* module, const std::string& path);

/// True if `path` exists and begins with the checkpoint magic.
bool CheckpointExists(const std::string& path);

/// Complete state of an interrupted training run — everything TrainSeq2Seq
/// needs to continue bit-exactly as if it had never stopped: AdamW moments
/// and step count (bias correction depends on it), the trainer RNG (which
/// doubles as the batch-sampler and dropout stream), schedule position, and
/// the running TrainStats accumulators. The module parameters are saved
/// alongside by SaveTrainState. See docs/CHECKPOINTING.md for the on-disk
/// layout (sectioned, one CRC32 per section).
struct TrainState {
  // Progress / schedule position. `next_step` is the first optimizer step
  // that has NOT run yet; the LR schedule is stateless given this index.
  int64_t next_step = 0;
  int64_t total_steps = 0;
  float first_loss = 0;
  double tail_loss = 0;  ///< running sum over the final-10% loss window
  int64_t tail_count = 0;

  // AdamW state, index-aligned with the model's TrainableParameters().
  int64_t opt_step = 0;
  std::vector<std::vector<float>> opt_m;
  std::vector<std::vector<float>> opt_v;

  // Trainer RNG (sampler + dropout stream), xoshiro256** raw state.
  std::array<uint64_t, 4> rng_state{};

  // Config fingerprint. Resuming under a different configuration would
  // silently change the trajectory, so TrainSeq2Seq validates these
  // against its TrainOptions and refuses to resume on mismatch.
  uint64_t seed = 0;
  int32_t batch_size = 0;
  int32_t grad_accum_shards = 1;
  int32_t max_src_len = 0;
  int32_t max_tgt_len = 0;
  int32_t pad_id = 0;
  float peak_lr = 0;
  float warmup_fraction = 0;
  float weight_decay = 0;
  float clip_norm = 0;
};

/// Atomically writes `state` plus every named parameter of `module` to
/// `path` (sectioned format, per-section CRC32).
Status SaveTrainState(const nn::Module& module, const TrainState& state,
                      const std::string& path);

/// Loads a training-state checkpoint. Every section's CRC is validated and
/// all parameter shapes are checked BEFORE anything is applied, so a
/// corrupt file leaves `module`/`state` untouched.
Status LoadTrainState(nn::Module* module, TrainState* state,
                      const std::string& path);

/// Checkpoint-directory layout helpers. A run directory holds
/// `ckpt_<step>.vt5s` files plus a `LATEST` pointer file naming the newest
/// fully-written checkpoint; both are only ever replaced atomically.
std::string TrainCheckpointPath(const std::string& dir, int64_t step);

/// Saves one rotation-managed checkpoint into `dir`: writes
/// `ckpt_<state.next_step>.vt5s` (atomic), then updates `LATEST` (atomic),
/// then prunes all but the `keep_last` newest checkpoint files
/// (best-effort; keep_last <= 0 keeps everything). Because LATEST is
/// repointed only after the checkpoint file is durably in place, a SIGKILL
/// at any moment leaves LATEST naming a checkpoint that passes CRC
/// validation. Mirrors `checkpoint/{saves,bytes,save_ms}` obs metrics.
Status SaveTrainCheckpoint(const nn::Module& module, const TrainState& state,
                           const std::string& dir, int keep_last);

/// Finds and loads the newest valid checkpoint in `dir`: first the LATEST
/// pointer, then (if that file is missing or fails validation) every other
/// `ckpt_*.vt5s` in descending step order. Returns NotFound when the
/// directory holds no checkpoint at all; any other error means checkpoints
/// exist but none validated. Bumps the `checkpoint/resumes` obs counter on
/// success.
Status ResumeTrainState(nn::Module* module, TrainState* state,
                        const std::string& dir);

}  // namespace model
}  // namespace vist5

#endif  // VIST5_MODEL_CHECKPOINT_H_
