#ifndef VIST5_MODEL_CHECKPOINT_H_
#define VIST5_MODEL_CHECKPOINT_H_

#include <string>

#include "nn/module.h"
#include "util/status.h"

namespace vist5 {
namespace model {

/// Writes every named parameter of `module` (including frozen ones) to
/// `path` in the repo's binary checkpoint format (magic + version header,
/// then name/shape/data records).
Status SaveCheckpoint(const nn::Module& module, const std::string& path);

/// Loads a checkpoint into `module`. Every stored parameter must exist in
/// the module with a matching element count; parameters of the module that
/// are absent from the file are left untouched (this is how LoRA adapters
/// load a base checkpoint).
Status LoadCheckpoint(nn::Module* module, const std::string& path);

/// True if `path` exists and begins with the checkpoint magic.
bool CheckpointExists(const std::string& path);

}  // namespace model
}  // namespace vist5

#endif  // VIST5_MODEL_CHECKPOINT_H_
