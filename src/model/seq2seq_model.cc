#include "model/seq2seq_model.h"

#include <algorithm>

#include "util/logging.h"

namespace vist5 {
namespace model {

Batch MakeBatch(const std::vector<const SeqPair*>& items, int pad_id,
                int max_src, int max_tgt) {
  VIST5_CHECK(!items.empty());
  Batch batch;
  batch.batch = static_cast<int>(items.size());
  for (const SeqPair* item : items) {
    batch.enc_seq = std::max(
        batch.enc_seq,
        std::min<int>(max_src, static_cast<int>(item->src.size())));
    batch.dec_seq = std::max(
        batch.dec_seq,
        std::min<int>(max_tgt, static_cast<int>(item->tgt.size())));
  }
  batch.enc_seq = std::max(batch.enc_seq, 1);
  batch.dec_seq = std::max(batch.dec_seq, 1);
  batch.enc_ids.assign(
      static_cast<size_t>(batch.batch) * batch.enc_seq, pad_id);
  batch.dec_input.assign(
      static_cast<size_t>(batch.batch) * batch.dec_seq, pad_id);
  batch.dec_target.assign(
      static_cast<size_t>(batch.batch) * batch.dec_seq, kIgnoreIndex);
  for (int b = 0; b < batch.batch; ++b) {
    const SeqPair& item = *items[static_cast<size_t>(b)];
    std::vector<int> src = item.src;
    if (static_cast<int>(src.size()) > batch.enc_seq) {
      src.resize(static_cast<size_t>(batch.enc_seq));
    }
    std::vector<int> tgt = item.tgt;
    if (static_cast<int>(tgt.size()) > batch.dec_seq) {
      // Keep the trailing EOS when truncating targets.
      const int eos = tgt.back();
      tgt.resize(static_cast<size_t>(batch.dec_seq));
      tgt.back() = eos;
    }
    batch.enc_lengths.push_back(static_cast<int>(src.size()));
    batch.dec_lengths.push_back(static_cast<int>(tgt.size()));
    for (size_t t = 0; t < src.size(); ++t) {
      batch.enc_ids[static_cast<size_t>(b) * batch.enc_seq + t] = src[t];
    }
    for (size_t t = 0; t < tgt.size(); ++t) {
      batch.dec_target[static_cast<size_t>(b) * batch.dec_seq + t] = tgt[t];
      if (t + 1 < static_cast<size_t>(batch.dec_seq)) {
        batch.dec_input[static_cast<size_t>(b) * batch.dec_seq + t + 1] =
            tgt[t];
      }
    }
  }
  return batch;
}

}  // namespace model
}  // namespace vist5
