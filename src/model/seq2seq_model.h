#ifndef VIST5_MODEL_SEQ2SEQ_MODEL_H_
#define VIST5_MODEL_SEQ2SEQ_MODEL_H_

#include <functional>
#include <vector>

#include "tensor/tensor.h"

namespace vist5 {
namespace nn {
class Module;
}  // namespace nn

namespace model {

/// One tokenized training pair. `tgt` must already end with EOS. `weight`
/// is the sampling weight used by temperature-mixed multi-task fine-tuning.
struct SeqPair {
  std::vector<int> src;
  std::vector<int> tgt;
  double weight = 1.0;
};

/// A padded mini-batch in the layout the models consume: row-major
/// [batch * seq] id arrays plus true lengths.
struct Batch {
  std::vector<int> enc_ids;
  std::vector<int> enc_lengths;
  int batch = 0;
  int enc_seq = 0;
  std::vector<int> dec_input;    ///< right-shifted targets, pad-started
  std::vector<int> dec_target;   ///< padding rows hold `ignore_index`
  std::vector<int> dec_lengths;
  int dec_seq = 0;
};

/// Ignore label used for padded decoder positions.
inline constexpr int kIgnoreIndex = -100;

/// Pads and packs `items` into a Batch. Sources longer than `max_src` and
/// targets longer than `max_tgt` are truncated (targets keep their final
/// EOS). `pad_id` doubles as the decoder start symbol, as in T5.
Batch MakeBatch(const std::vector<const SeqPair*>& items, int pad_id,
                int max_src, int max_tgt);

/// Decoding configuration.
struct GenerationOptions {
  int max_len = 48;
  int beam_size = 1;
  /// Softmax temperature for sampling; <= 0 selects greedy/beam decoding.
  float temperature = 0.0f;
  /// Restrict sampling to the k most likely tokens (0 = full vocabulary).
  int top_k = 0;
  /// RNG for sampling; required when temperature > 0.
  Rng* rng = nullptr;
  /// Optional vocabulary mask for grammar-constrained decoding (ncNet-style
  /// attention forcing): tokens for which this returns false are never
  /// emitted. Null means unconstrained. When no token is allowed at some
  /// step, decoding treats it as end-of-sequence.
  std::function<bool(int token)> allowed;
  /// Incremental KV-cached decoding (the fast path). False falls back to
  /// re-running the decoder over the full prefix each step — kept as the
  /// reference implementation; both produce bit-identical tokens (see
  /// docs/INFERENCE.md).
  bool use_kv_cache = true;
  /// Wall-clock decode budget in milliseconds, measured from the start of
  /// decoding (0 = unlimited). On expiry the cached decoders return the
  /// best result so far: greedy keeps the tokens emitted up to that point,
  /// beam search selects among finished and alive hypotheses exactly as it
  /// would when the step budget runs out. Serving uses this to bound
  /// per-request latency (docs/SERVING.md).
  int deadline_ms = 0;
  /// Precision the weight matrices are read at during this decode.
  /// kFloat32 is the exact path; kInt8 quantizes eligible projections at
  /// load (cached per weight version) and reads ~4x less weight traffic
  /// per token, at a bounded logit perturbation (docs/KERNELS.md).
  /// Requests with different dtypes never share a continuous decode batch.
  WeightDtype weight_dtype = WeightDtype::kFloat32;
  /// Speculative decoding: maximum tokens the draft model proposes per
  /// verify round (0 = off). Only meaningful for greedy decoding
  /// (beam_size == 1, temperature <= 0) through spec::DraftVerifyEngine —
  /// the committed tokens are bit-identical to plain greedy regardless of
  /// draft quality (docs/SPECULATIVE.md).
  int draft_k = 0;
  /// Adapt the proposal length to the trailing acceptance rate: shrink
  /// toward 1 after rejections, regrow toward draft_k after full accepts.
  /// The policy is a deterministic function of committed token counts, so
  /// it never perturbs parity or thread-count determinism.
  bool draft_adaptive = true;
};

/// Abstract trainable sequence-to-sequence model (the unit of comparison in
/// every results table).
class Seq2SeqModel {
 public:
  virtual ~Seq2SeqModel() = default;

  /// Parameters the optimizer should update.
  virtual std::vector<Tensor> TrainableParameters() const = 0;

  /// The parameter-owning module whose full named-parameter set (including
  /// frozen tensors, e.g. a LoRA base) checkpoints save and restore.
  /// Returns nullptr for models that are not module-backed; training-state
  /// checkpointing (TrainOptions::checkpoint_dir) requires a non-null
  /// module.
  virtual nn::Module* CheckpointModule() { return nullptr; }

  /// Mean token cross-entropy over the batch.
  virtual Tensor BatchLoss(const Batch& batch, bool train, Rng* rng) const = 0;

  /// Decodes output ids (without EOS) for a single source.
  virtual std::vector<int> Generate(const std::vector<int>& src,
                                    const GenerationOptions& options) const = 0;
};

}  // namespace model
}  // namespace vist5

#endif  // VIST5_MODEL_SEQ2SEQ_MODEL_H_
