#ifndef VIST5_MODEL_RETRIEVAL_H_
#define VIST5_MODEL_RETRIEVAL_H_

#include <map>
#include <string>
#include <vector>

#include "db/table.h"
#include "dv/dv_query.h"

namespace vist5 {
namespace model {

/// IDF-weighted lexical retriever over training questions. Used by both the
/// GPT-4 similarity-prompting proxy and the RGVisNet retrieve-and-revise
/// proxy.
class ExampleRetriever {
 public:
  struct Item {
    std::string question;
    std::string query;
    std::string database;
  };

  void Add(Item item);

  /// Computes IDF statistics; must be called after the last Add.
  void Finalize();

  /// Top-k most similar stored items (cosine over IDF-weighted token sets).
  std::vector<const Item*> TopK(const std::string& question, int k) const;

  int size() const { return static_cast<int>(items_.size()); }

 private:
  double Idf(const std::string& token) const;

  std::vector<Item> items_;
  std::vector<std::vector<std::string>> item_tokens_;
  std::map<std::string, int> doc_freq_;
  bool finalized_ = false;
};

/// The GPT-4 (5-shot similarity prompting) stand-in: retrieves the nearest
/// training exemplar and transplants its DV query onto the target schema —
/// remapping tables and columns by question mentions — without any gradient
/// updates. Reproduces the in-context-learning profile of Table IV: high
/// Vis EM (chart types transfer), weaker Axis/Data EM (schema grounding is
/// brittle).
class FewShotRetrievalModel {
 public:
  explicit FewShotRetrievalModel(int shots = 5) : shots_(shots) {}

  void Fit(std::vector<ExampleRetriever::Item> train);

  /// Predicts a DV query for `question` over `database`.
  std::string Predict(const std::string& question,
                      const db::Database& database) const;

 private:
  int shots_;
  ExampleRetriever retriever_;
};

/// Adapts `prototype` to `database`, steering table/column choices with the
/// NL question (the slot-transplantation step shared by the few-shot proxy
/// and the retrieve-and-revise pipeline). Exposed for tests.
dv::DvQuery AdaptQueryToSchema(const dv::DvQuery& prototype,
                               const std::string& question,
                               const db::Database& database);

}  // namespace model
}  // namespace vist5

#endif  // VIST5_MODEL_RETRIEVAL_H_
