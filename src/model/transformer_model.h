#ifndef VIST5_MODEL_TRANSFORMER_MODEL_H_
#define VIST5_MODEL_TRANSFORMER_MODEL_H_

#include <memory>

#include "model/seq2seq_model.h"
#include "nn/transformer.h"

namespace vist5 {
namespace model {

/// One alive beam-search hypothesis. `tokens` is the decoder input so far
/// (starts with the pad/start symbol); `log_prob` is the raw (unnormalized)
/// cumulative token log-probability.
struct BeamHypothesis {
  std::vector<int> tokens;
  double log_prob = 0;
};

/// Argmax over one logits row subject to the optional vocabulary
/// constraint. Returns -1 when the constraint rejects every token
/// ("nothing allowed"), which callers treat as end-of-sequence. Shared by
/// the greedy decoders and the continuous-batching serve path so every
/// path picks tokens identically.
int BestAllowedToken(const float* row, int vocab,
                     const std::function<bool(int)>& allowed);

/// Final beam selection. `finished` holds (output tokens, length-normalized
/// score) pairs for hypotheses that emitted EOS; `alive` holds hypotheses
/// still running when the step budget ended. Alive hypotheses are
/// length-normalized (log_prob / emitted tokens) so they compete with
/// finished ones on equal footing, then the best normalized score wins.
/// Exposed for regression tests.
std::vector<int> SelectBeamResult(
    std::vector<std::pair<std::vector<int>, double>> finished,
    const std::vector<BeamHypothesis>& alive);

/// Immutable, shareable product of the encoder-side prefill for one source
/// sequence: the encoder hidden states plus the per-layer cross-attention
/// K/V projection a decode needs before its first step. Produced under
/// NoGradGuard by TransformerSeq2Seq::EncodePrefix; nothing on the decode
/// path ever writes through these tensors (Reorder/MergeFrom replace cache
/// handles with copies, and only self_k/self_v see in-place scatter), so
/// one block can back any number of concurrent decodes bit-exactly. The
/// serve layer refcounts and LRU-evicts them (serve::PrefixCache,
/// docs/SERVING.md).
struct EncodedPrefix {
  std::vector<int> tokens;  ///< the full encoder input this block encodes
  /// Weight representation the block was computed under. int8 and float32
  /// encoder outputs differ numerically, so a block only substitutes for
  /// prefill in a batch running the same dtype.
  WeightDtype dtype = WeightDtype::kFloat32;
  Tensor memory;         ///< [src_len, d_model] encoder output (batch 1)
  nn::DecodeState state;  ///< batch-1 cross K/V; self caches left empty
  /// Heap bytes the block keeps resident (key + encoder output + cross
  /// K/V), the unit of PrefixCache byte budgeting.
  size_t ByteSize() const;
};

/// Seq2SeqModel adapter around nn::Transformer. This single class backs the
/// T5 family (DataVisT5, CodeT5+, T5), BART, the vanilla Transformer
/// baseline, the ncNet proxy (via constrained decoding), and the LLM
/// proxies (via EnableLora) — they differ only in configuration and
/// training recipe.
class TransformerSeq2Seq : public Seq2SeqModel {
 public:
  TransformerSeq2Seq(const nn::TransformerConfig& config, int pad_id,
                     int eos_id, uint64_t seed);

  std::vector<Tensor> TrainableParameters() const override {
    return transformer_->Parameters();
  }

  nn::Module* CheckpointModule() override { return transformer_.get(); }

  Tensor BatchLoss(const Batch& batch, bool train, Rng* rng) const override;

  /// Greedy decoding for beam_size == 1, otherwise length-normalized beam
  /// search. Honors `options.allowed` as a hard vocabulary constraint.
  std::vector<int> Generate(const std::vector<int>& src,
                            const GenerationOptions& options) const override;

  /// Decodes all sources as one continuously batched greedy decode over a
  /// shared KV cache (ContinuousDecoder). Token-for-token identical to
  /// calling Generate on each source — rows are batch-pure, see
  /// docs/SERVING.md. Beam, sampling, and full-prefix options fall back to
  /// per-request Generate. Defined in batch_decoder.cc.
  std::vector<std::vector<int>> GenerateBatch(
      const std::vector<std::vector<int>>& srcs,
      const GenerationOptions& options) const;

  /// Runs the encoder-side prefill (encode + cross-attention K/V
  /// projection) for one source as a standalone immutable block that
  /// ContinuousDecoder::Admit can splice in place of recomputing it. The
  /// block is computed at `dtype` and is only valid for decode batches
  /// running that dtype. Defined in batch_decoder.cc.
  std::shared_ptr<const EncodedPrefix> EncodePrefix(
      const std::vector<int>& src, WeightDtype dtype) const;

  nn::Transformer& transformer() { return *transformer_; }
  const nn::Transformer& transformer() const { return *transformer_; }

  int pad_id() const { return pad_id_; }
  int eos_id() const { return eos_id_; }

 private:
  /// KV-cached incremental decoding (the default fast path).
  std::vector<int> GreedyDecode(const std::vector<int>& src,
                                const GenerationOptions& options) const;
  std::vector<int> BeamDecode(const std::vector<int>& src,
                              const GenerationOptions& options) const;
  /// Full-prefix reference implementations (options.use_kv_cache = false):
  /// re-run the decoder stack over the whole prefix every step. Slower but
  /// trivially correct; the parity property tests pin the cached paths to
  /// these token-for-token.
  std::vector<int> GreedyDecodeFull(const std::vector<int>& src,
                                    const GenerationOptions& options) const;
  std::vector<int> BeamDecodeFull(const std::vector<int>& src,
                                  const GenerationOptions& options) const;

  std::unique_ptr<nn::Transformer> transformer_;
  int pad_id_;
  int eos_id_;
};

}  // namespace model
}  // namespace vist5

#endif  // VIST5_MODEL_TRANSFORMER_MODEL_H_
