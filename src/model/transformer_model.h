#ifndef VIST5_MODEL_TRANSFORMER_MODEL_H_
#define VIST5_MODEL_TRANSFORMER_MODEL_H_

#include <memory>

#include "model/seq2seq_model.h"
#include "nn/transformer.h"

namespace vist5 {
namespace model {

/// Seq2SeqModel adapter around nn::Transformer. This single class backs the
/// T5 family (DataVisT5, CodeT5+, T5), BART, the vanilla Transformer
/// baseline, the ncNet proxy (via constrained decoding), and the LLM
/// proxies (via EnableLora) — they differ only in configuration and
/// training recipe.
class TransformerSeq2Seq : public Seq2SeqModel {
 public:
  TransformerSeq2Seq(const nn::TransformerConfig& config, int pad_id,
                     int eos_id, uint64_t seed);

  std::vector<Tensor> TrainableParameters() const override {
    return transformer_->Parameters();
  }

  Tensor BatchLoss(const Batch& batch, bool train, Rng* rng) const override;

  /// Greedy decoding for beam_size == 1, otherwise length-normalized beam
  /// search. Honors `options.allowed` as a hard vocabulary constraint.
  std::vector<int> Generate(const std::vector<int>& src,
                            const GenerationOptions& options) const override;

  nn::Transformer& transformer() { return *transformer_; }
  const nn::Transformer& transformer() const { return *transformer_; }

  int pad_id() const { return pad_id_; }
  int eos_id() const { return eos_id_; }

 private:
  struct Hypothesis {
    std::vector<int> tokens;  ///< decoder input, starts with pad
    double log_prob = 0;
  };

  std::vector<int> GreedyDecode(const std::vector<int>& src,
                                const GenerationOptions& options) const;
  std::vector<int> BeamDecode(const std::vector<int>& src,
                              const GenerationOptions& options) const;

  std::unique_ptr<nn::Transformer> transformer_;
  int pad_id_;
  int eos_id_;
};

}  // namespace model
}  // namespace vist5

#endif  // VIST5_MODEL_TRANSFORMER_MODEL_H_
