#include "model/transformer_model.h"

#include <algorithm>
#include <cmath>

namespace vist5 {
namespace model {
namespace {

/// Argmax over a logits row subject to the optional vocabulary constraint.
int BestToken(const float* row, int vocab,
              const std::function<bool(int)>& allowed) {
  int best = -1;
  float best_score = -1e30f;
  for (int v = 0; v < vocab; ++v) {
    if (allowed && !allowed(v)) continue;
    if (row[v] > best_score) {
      best_score = row[v];
      best = v;
    }
  }
  return best < 0 ? 0 : best;
}

/// Temperature + top-k sampling over a logits row. Falls back to argmax
/// when no token is allowed.
int SampleToken(const float* row, int vocab, const GenerationOptions& opts) {
  std::vector<std::pair<float, int>> scored;
  scored.reserve(static_cast<size_t>(vocab));
  for (int v = 0; v < vocab; ++v) {
    if (opts.allowed && !opts.allowed(v)) continue;
    scored.emplace_back(row[v] / opts.temperature, v);
  }
  if (scored.empty()) return 0;
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  if (opts.top_k > 0 && static_cast<int>(scored.size()) > opts.top_k) {
    scored.resize(static_cast<size_t>(opts.top_k));
  }
  const float maxv = scored[0].first;
  std::vector<double> weights;
  weights.reserve(scored.size());
  for (const auto& [s, v] : scored) weights.push_back(std::exp(s - maxv));
  const int pick = opts.rng->Categorical(weights);
  return scored[static_cast<size_t>(pick)].second;
}

/// Log-softmax of one logits row (for beam scoring).
std::vector<float> LogSoftmaxRow(const float* row, int vocab) {
  float maxv = row[0];
  for (int v = 1; v < vocab; ++v) maxv = std::max(maxv, row[v]);
  double sum = 0;
  for (int v = 0; v < vocab; ++v) sum += std::exp(row[v] - maxv);
  const float lse = maxv + static_cast<float>(std::log(sum));
  std::vector<float> out(static_cast<size_t>(vocab));
  for (int v = 0; v < vocab; ++v) out[static_cast<size_t>(v)] = row[v] - lse;
  return out;
}

}  // namespace

TransformerSeq2Seq::TransformerSeq2Seq(const nn::TransformerConfig& config,
                                       int pad_id, int eos_id, uint64_t seed)
    : pad_id_(pad_id), eos_id_(eos_id) {
  Rng rng(seed);
  transformer_ = std::make_unique<nn::Transformer>(config, &rng);
}

Tensor TransformerSeq2Seq::BatchLoss(const Batch& batch, bool train,
                                     Rng* rng) const {
  return transformer_->Loss(batch.enc_ids, batch.batch, batch.enc_seq,
                            batch.enc_lengths, batch.dec_input,
                            batch.dec_target, batch.dec_seq,
                            batch.dec_lengths, train, rng);
}

std::vector<int> TransformerSeq2Seq::Generate(
    const std::vector<int>& src, const GenerationOptions& options) const {
  if (options.beam_size <= 1) return GreedyDecode(src, options);
  return BeamDecode(src, options);
}

std::vector<int> TransformerSeq2Seq::GreedyDecode(
    const std::vector<int>& src, const GenerationOptions& options) const {
  NoGradGuard guard;
  const int src_len = static_cast<int>(src.size());
  const std::vector<int> src_lengths = {src_len};
  Tensor memory = transformer_->Encode(src, 1, src_len, src_lengths,
                                       /*train=*/false, nullptr);
  std::vector<int> dec = {pad_id_};
  std::vector<int> out;
  for (int step = 0; step < options.max_len; ++step) {
    const std::vector<int> dec_lengths = {static_cast<int>(dec.size())};
    Tensor hidden = transformer_->Decode(dec, 1, static_cast<int>(dec.size()),
                                         memory, src_len, src_lengths,
                                         dec_lengths, /*train=*/false, nullptr);
    Tensor logits = transformer_->Logits(hidden);
    const int vocab = logits.dim(1);
    const float* row =
        logits.data().data() + (dec.size() - 1) * static_cast<size_t>(vocab);
    const bool sample = options.temperature > 0 && options.rng != nullptr;
    const int next = sample ? SampleToken(row, vocab, options)
                            : BestToken(row, vocab, options.allowed);
    if (next == eos_id_) break;
    out.push_back(next);
    dec.push_back(next);
  }
  return out;
}

std::vector<int> TransformerSeq2Seq::BeamDecode(
    const std::vector<int>& src, const GenerationOptions& options) const {
  NoGradGuard guard;
  const int k = options.beam_size;
  const int src_len = static_cast<int>(src.size());
  const std::vector<int> one_length = {src_len};
  Tensor memory = transformer_->Encode(src, 1, src_len, one_length,
                                       /*train=*/false, nullptr);

  std::vector<Hypothesis> beams = {{{pad_id_}, 0.0}};
  std::vector<std::pair<std::vector<int>, double>> finished;

  for (int step = 0; step < options.max_len && !beams.empty(); ++step) {
    const int nb = static_cast<int>(beams.size());
    const int dec_seq = static_cast<int>(beams[0].tokens.size());
    // Pack all alive hypotheses (same length by construction) into one
    // decoder batch; replicate the encoder memory per hypothesis.
    std::vector<int> dec_ids;
    dec_ids.reserve(static_cast<size_t>(nb) * dec_seq);
    for (const Hypothesis& h : beams) {
      dec_ids.insert(dec_ids.end(), h.tokens.begin(), h.tokens.end());
    }
    std::vector<float> mem_data;
    mem_data.reserve(memory.data().size() * static_cast<size_t>(nb));
    for (int b = 0; b < nb; ++b) {
      mem_data.insert(mem_data.end(), memory.data().begin(),
                      memory.data().end());
    }
    Tensor batched_memory({nb * src_len, memory.dim(1)}, std::move(mem_data));
    std::vector<int> mem_lengths(static_cast<size_t>(nb), src_len);
    std::vector<int> dec_lengths(static_cast<size_t>(nb), dec_seq);

    Tensor hidden = transformer_->Decode(dec_ids, nb, dec_seq, batched_memory,
                                         src_len, mem_lengths, dec_lengths,
                                         /*train=*/false, nullptr);
    Tensor logits = transformer_->Logits(hidden);
    const int vocab = logits.dim(1);

    // Expand: per hypothesis, take the best 2k next tokens.
    struct Candidate {
      int beam;
      int token;
      double log_prob;
    };
    std::vector<Candidate> candidates;
    for (int b = 0; b < nb; ++b) {
      const float* row = logits.data().data() +
                         (static_cast<size_t>(b) * dec_seq + dec_seq - 1) *
                             static_cast<size_t>(vocab);
      const std::vector<float> logp = LogSoftmaxRow(row, vocab);
      std::vector<int> order;
      order.reserve(static_cast<size_t>(vocab));
      for (int v = 0; v < vocab; ++v) {
        if (options.allowed && !options.allowed(v)) continue;
        order.push_back(v);
      }
      const int keep = std::min<int>(2 * k, static_cast<int>(order.size()));
      std::partial_sort(order.begin(), order.begin() + keep, order.end(),
                        [&](int a, int c) {
                          return logp[static_cast<size_t>(a)] >
                                 logp[static_cast<size_t>(c)];
                        });
      for (int i = 0; i < keep; ++i) {
        candidates.push_back({b, order[static_cast<size_t>(i)],
                              beams[static_cast<size_t>(b)].log_prob +
                                  logp[static_cast<size_t>(
                                      order[static_cast<size_t>(i)])]});
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.log_prob > b.log_prob;
              });

    std::vector<Hypothesis> next_beams;
    for (const Candidate& c : candidates) {
      if (static_cast<int>(next_beams.size()) >= k) break;
      if (c.token == eos_id_) {
        std::vector<int> tokens(
            beams[static_cast<size_t>(c.beam)].tokens.begin() + 1,
            beams[static_cast<size_t>(c.beam)].tokens.end());
        const double norm =
            c.log_prob / std::max<size_t>(1, tokens.size() + 1);
        finished.emplace_back(std::move(tokens), norm);
        continue;
      }
      Hypothesis h = beams[static_cast<size_t>(c.beam)];
      h.tokens.push_back(c.token);
      h.log_prob = c.log_prob;
      next_beams.push_back(std::move(h));
    }
    beams = std::move(next_beams);
    if (static_cast<int>(finished.size()) >= k) break;
  }

  if (finished.empty()) {
    if (beams.empty()) return {};
    return std::vector<int>(beams[0].tokens.begin() + 1,
                            beams[0].tokens.end());
  }
  std::sort(finished.begin(), finished.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return finished[0].first;
}

}  // namespace model
}  // namespace vist5
