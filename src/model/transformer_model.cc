#include "model/transformer_model.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/ops.h"

namespace vist5 {
namespace model {

// Returning -1 on "nothing allowed" (rather than emitting token 0) matters:
// pad would loop until max_len producing pad garbage.
int BestAllowedToken(const float* row, int vocab,
                     const std::function<bool(int)>& allowed) {
  int best = -1;
  float best_score = -1e30f;
  for (int v = 0; v < vocab; ++v) {
    if (allowed && !allowed(v)) continue;
    if (row[v] > best_score) {
      best_score = row[v];
      best = v;
    }
  }
  return best;
}

namespace {

/// Temperature + top-k sampling over a logits row. Returns -1 when no
/// token is allowed (treated as end-of-sequence by callers).
int SampleToken(const float* row, int vocab, const GenerationOptions& opts) {
  std::vector<std::pair<float, int>> scored;
  scored.reserve(static_cast<size_t>(vocab));
  for (int v = 0; v < vocab; ++v) {
    if (opts.allowed && !opts.allowed(v)) continue;
    scored.emplace_back(row[v] / opts.temperature, v);
  }
  if (scored.empty()) return -1;
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  if (opts.top_k > 0 && static_cast<int>(scored.size()) > opts.top_k) {
    scored.resize(static_cast<size_t>(opts.top_k));
  }
  const float maxv = scored[0].first;
  std::vector<double> weights;
  weights.reserve(scored.size());
  for (const auto& [s, v] : scored) weights.push_back(std::exp(s - maxv));
  const int pick = opts.rng->Categorical(weights);
  return scored[static_cast<size_t>(pick)].second;
}

/// Log-softmax of one logits row (for beam scoring).
std::vector<float> LogSoftmaxRow(const float* row, int vocab) {
  float maxv = row[0];
  for (int v = 1; v < vocab; ++v) maxv = std::max(maxv, row[v]);
  double sum = 0;
  for (int v = 0; v < vocab; ++v) sum += std::exp(row[v] - maxv);
  const float lse = maxv + static_cast<float>(std::log(sum));
  std::vector<float> out(static_cast<size_t>(vocab));
  for (int v = 0; v < vocab; ++v) out[static_cast<size_t>(v)] = row[v] - lse;
  return out;
}

/// One beam-search expansion. `logits` holds one row per alive hypothesis
/// ([nb, V]). EOS continuations move into `finished` with length-normalized
/// scores; a hypothesis whose every continuation is disallowed also
/// finishes (constrained decoding reached a dead end). Shared by the
/// cached and full-prefix beam paths so both expand identically.
struct BeamExpansion {
  std::vector<BeamHypothesis> beams;  ///< pruned to at most k
  std::vector<int> parents;           ///< parent index per surviving beam
};

BeamExpansion ExpandBeams(
    const Tensor& logits, const std::vector<BeamHypothesis>& beams, int k,
    const GenerationOptions& options, int eos_id,
    std::vector<std::pair<std::vector<int>, double>>* finished) {
  const int nb = static_cast<int>(beams.size());
  const int vocab = logits.dim(1);

  struct Candidate {
    int beam;
    int token;
    double log_prob;
  };
  std::vector<Candidate> candidates;
  for (int b = 0; b < nb; ++b) {
    const float* row =
        logits.data().data() + static_cast<size_t>(b) * vocab;
    const std::vector<float> logp = LogSoftmaxRow(row, vocab);
    std::vector<int> order;
    order.reserve(static_cast<size_t>(vocab));
    for (int v = 0; v < vocab; ++v) {
      if (options.allowed && !options.allowed(v)) continue;
      order.push_back(v);
    }
    if (order.empty()) {
      // Nothing allowed: end this hypothesis as-is (no EOS log-prob to
      // add, so normalize by the tokens actually emitted).
      std::vector<int> out(beams[static_cast<size_t>(b)].tokens.begin() + 1,
                           beams[static_cast<size_t>(b)].tokens.end());
      const double norm = beams[static_cast<size_t>(b)].log_prob /
                          std::max<size_t>(1, out.size());
      finished->emplace_back(std::move(out), norm);
      continue;
    }
    const int keep = std::min<int>(2 * k, static_cast<int>(order.size()));
    std::partial_sort(order.begin(), order.begin() + keep, order.end(),
                      [&](int a, int c) {
                        return logp[static_cast<size_t>(a)] >
                               logp[static_cast<size_t>(c)];
                      });
    for (int i = 0; i < keep; ++i) {
      candidates.push_back({b, order[static_cast<size_t>(i)],
                            beams[static_cast<size_t>(b)].log_prob +
                                logp[static_cast<size_t>(
                                    order[static_cast<size_t>(i)])]});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.log_prob > b.log_prob;
            });

  BeamExpansion next;
  for (const Candidate& c : candidates) {
    if (static_cast<int>(next.beams.size()) >= k) break;
    if (c.token == eos_id) {
      std::vector<int> tokens(
          beams[static_cast<size_t>(c.beam)].tokens.begin() + 1,
          beams[static_cast<size_t>(c.beam)].tokens.end());
      const double norm = c.log_prob / std::max<size_t>(1, tokens.size() + 1);
      finished->emplace_back(std::move(tokens), norm);
      continue;
    }
    BeamHypothesis h = beams[static_cast<size_t>(c.beam)];
    h.tokens.push_back(c.token);
    h.log_prob = c.log_prob;
    next.beams.push_back(std::move(h));
    next.parents.push_back(c.beam);
  }
  return next;
}

}  // namespace

std::vector<int> SelectBeamResult(
    std::vector<std::pair<std::vector<int>, double>> finished,
    const std::vector<BeamHypothesis>& alive) {
  for (const BeamHypothesis& h : alive) {
    std::vector<int> out(h.tokens.begin() + 1, h.tokens.end());
    const double norm = h.log_prob / std::max<size_t>(1, out.size());
    finished.emplace_back(std::move(out), norm);
  }
  if (finished.empty()) return {};
  size_t best = 0;
  for (size_t i = 1; i < finished.size(); ++i) {
    if (finished[i].second > finished[best].second) best = i;
  }
  return std::move(finished[best].first);
}

TransformerSeq2Seq::TransformerSeq2Seq(const nn::TransformerConfig& config,
                                       int pad_id, int eos_id, uint64_t seed)
    : pad_id_(pad_id), eos_id_(eos_id) {
  Rng rng(seed);
  transformer_ = std::make_unique<nn::Transformer>(config, &rng);
}

Tensor TransformerSeq2Seq::BatchLoss(const Batch& batch, bool train,
                                     Rng* rng) const {
  return transformer_->Loss(batch.enc_ids, batch.batch, batch.enc_seq,
                            batch.enc_lengths, batch.dec_input,
                            batch.dec_target, batch.dec_seq,
                            batch.dec_lengths, train, rng);
}

std::vector<int> TransformerSeq2Seq::Generate(
    const std::vector<int>& src, const GenerationOptions& options) const {
  VIST5_TRACE_SPAN("model/generate");
  static obs::Counter* cached_calls = obs::GetCounter("decode/cached_calls");
  static obs::Counter* full_calls = obs::GetCounter("decode/full_calls");
  static obs::Counter* tokens = obs::GetCounter("decode/tokens");
  static obs::Histogram* tps = obs::GetHistogram("decode/tokens_per_sec");

  const bool timed = obs::LatencySamplingEnabled();
  const auto start = timed ? std::chrono::steady_clock::now()
                           : std::chrono::steady_clock::time_point{};
  std::vector<int> out;
  if (options.beam_size <= 1) {
    out = options.use_kv_cache ? GreedyDecode(src, options)
                               : GreedyDecodeFull(src, options);
  } else {
    out = options.use_kv_cache ? BeamDecode(src, options)
                               : BeamDecodeFull(src, options);
  }
  (options.use_kv_cache ? cached_calls : full_calls)->Add();
  tokens->Add(static_cast<int64_t>(out.size()));
  if (timed && !out.empty()) {
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (secs > 0) tps->Observe(static_cast<double>(out.size()) / secs);
  }
  return out;
}

std::vector<int> TransformerSeq2Seq::GreedyDecode(
    const std::vector<int>& src, const GenerationOptions& options) const {
  NoGradGuard guard;
  WeightDtypeGuard dtype_guard(options.weight_dtype);
  const int src_len = static_cast<int>(src.size());
  const std::vector<int> src_lengths = {src_len};
  Tensor memory = transformer_->Encode(src, 1, src_len, src_lengths,
                                       /*train=*/false, nullptr);
  nn::DecodeState state =
      transformer_->BeginDecode(memory, 1, src_len, src_lengths);
  std::vector<int> out;
  int prev = pad_id_;
  const bool has_deadline = options.deadline_ms > 0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(has_deadline ? options.deadline_ms : 0);
  for (int step = 0; step < options.max_len; ++step) {
    // Deadline expiry returns the best-so-far prefix instead of throwing
    // work away (serving's per-request latency bound).
    if (has_deadline && std::chrono::steady_clock::now() >= deadline) break;
    Tensor hidden = transformer_->DecodeStep({prev}, &state);  // [1, d]
    Tensor logits = transformer_->Logits(hidden);              // [1, V]
    const int vocab = logits.dim(1);
    const float* row = logits.data().data();
    const bool sample = options.temperature > 0 && options.rng != nullptr;
    const int next = sample ? SampleToken(row, vocab, options)
                            : BestAllowedToken(row, vocab, options.allowed);
    if (next < 0 || next == eos_id_) break;
    out.push_back(next);
    prev = next;
  }
  return out;
}

std::vector<int> TransformerSeq2Seq::GreedyDecodeFull(
    const std::vector<int>& src, const GenerationOptions& options) const {
  NoGradGuard guard;
  WeightDtypeGuard dtype_guard(options.weight_dtype);
  const int src_len = static_cast<int>(src.size());
  const std::vector<int> src_lengths = {src_len};
  Tensor memory = transformer_->Encode(src, 1, src_len, src_lengths,
                                       /*train=*/false, nullptr);
  std::vector<int> dec = {pad_id_};
  std::vector<int> out;
  for (int step = 0; step < options.max_len; ++step) {
    const std::vector<int> dec_lengths = {static_cast<int>(dec.size())};
    Tensor hidden = transformer_->Decode(dec, 1, static_cast<int>(dec.size()),
                                         memory, src_len, src_lengths,
                                         dec_lengths, /*train=*/false, nullptr);
    // Only the newest position is read; project just that row instead of
    // paying O(T * V) for logits that are thrown away.
    Tensor last =
        ops::GatherRows(hidden, {static_cast<int>(dec.size()) - 1});
    Tensor logits = transformer_->Logits(last);  // [1, V]
    const int vocab = logits.dim(1);
    const float* row = logits.data().data();
    const bool sample = options.temperature > 0 && options.rng != nullptr;
    const int next = sample ? SampleToken(row, vocab, options)
                            : BestAllowedToken(row, vocab, options.allowed);
    if (next < 0 || next == eos_id_) break;
    out.push_back(next);
    dec.push_back(next);
  }
  return out;
}

std::vector<int> TransformerSeq2Seq::BeamDecode(
    const std::vector<int>& src, const GenerationOptions& options) const {
  NoGradGuard guard;
  WeightDtypeGuard dtype_guard(options.weight_dtype);
  const int k = options.beam_size;
  const int src_len = static_cast<int>(src.size());
  const std::vector<int> one_length = {src_len};
  Tensor memory = transformer_->Encode(src, 1, src_len, one_length,
                                       /*train=*/false, nullptr);
  nn::DecodeState state =
      transformer_->BeginDecode(memory, 1, src_len, one_length);

  std::vector<BeamHypothesis> beams = {{{pad_id_}, 0.0}};
  std::vector<std::pair<std::vector<int>, double>> finished;

  const bool has_deadline = options.deadline_ms > 0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(has_deadline ? options.deadline_ms : 0);
  for (int step = 0; step < options.max_len && !beams.empty(); ++step) {
    // On deadline expiry, select among what exists so far — the same
    // choice rule as when the step budget runs out.
    if (has_deadline && std::chrono::steady_clock::now() >= deadline) break;
    const int nb = static_cast<int>(beams.size());
    // Feed only each hypothesis' newest token; the cache carries the rest.
    std::vector<int> next_ids(static_cast<size_t>(nb));
    for (int b = 0; b < nb; ++b) {
      next_ids[static_cast<size_t>(b)] = beams[static_cast<size_t>(b)].tokens.back();
    }
    Tensor hidden = transformer_->DecodeStep(next_ids, &state);  // [nb, d]
    Tensor logits = transformer_->Logits(hidden);                // [nb, V]

    BeamExpansion next =
        ExpandBeams(logits, beams, k, options, eos_id_, &finished);
    beams = std::move(next.beams);
    if (!beams.empty()) state.Reorder(next.parents);
    if (static_cast<int>(finished.size()) >= k) break;
  }
  return SelectBeamResult(std::move(finished), beams);
}

std::vector<int> TransformerSeq2Seq::BeamDecodeFull(
    const std::vector<int>& src, const GenerationOptions& options) const {
  NoGradGuard guard;
  WeightDtypeGuard dtype_guard(options.weight_dtype);
  const int k = options.beam_size;
  const int src_len = static_cast<int>(src.size());
  const std::vector<int> one_length = {src_len};
  Tensor memory = transformer_->Encode(src, 1, src_len, one_length,
                                       /*train=*/false, nullptr);

  std::vector<BeamHypothesis> beams = {{{pad_id_}, 0.0}};
  std::vector<std::pair<std::vector<int>, double>> finished;

  for (int step = 0; step < options.max_len && !beams.empty(); ++step) {
    const int nb = static_cast<int>(beams.size());
    const int dec_seq = static_cast<int>(beams[0].tokens.size());
    // Pack all alive hypotheses (same length by construction) into one
    // decoder batch; replicate the encoder memory per hypothesis.
    std::vector<int> dec_ids;
    dec_ids.reserve(static_cast<size_t>(nb) * dec_seq);
    for (const BeamHypothesis& h : beams) {
      dec_ids.insert(dec_ids.end(), h.tokens.begin(), h.tokens.end());
    }
    std::vector<float> mem_data;
    mem_data.reserve(memory.data().size() * static_cast<size_t>(nb));
    for (int b = 0; b < nb; ++b) {
      mem_data.insert(mem_data.end(), memory.data().begin(),
                      memory.data().end());
    }
    Tensor batched_memory({nb * src_len, memory.dim(1)}, std::move(mem_data));
    std::vector<int> mem_lengths(static_cast<size_t>(nb), src_len);
    std::vector<int> dec_lengths(static_cast<size_t>(nb), dec_seq);

    Tensor hidden = transformer_->Decode(dec_ids, nb, dec_seq, batched_memory,
                                         src_len, mem_lengths, dec_lengths,
                                         /*train=*/false, nullptr);
    // Keep only each hypothesis' newest position before the vocab
    // projection (same O(T * V) fix as GreedyDecodeFull).
    std::vector<int> last_rows(static_cast<size_t>(nb));
    for (int b = 0; b < nb; ++b) {
      last_rows[static_cast<size_t>(b)] = b * dec_seq + dec_seq - 1;
    }
    Tensor logits =
        transformer_->Logits(ops::GatherRows(hidden, last_rows));  // [nb, V]

    BeamExpansion next =
        ExpandBeams(logits, beams, k, options, eos_id_, &finished);
    beams = std::move(next.beams);
    if (static_cast<int>(finished.size()) >= k) break;
  }
  return SelectBeamResult(std::move(finished), beams);
}

}  // namespace model
}  // namespace vist5
