#include "model/rnn_model.h"

#include "tensor/ops.h"

namespace vist5 {
namespace model {

RnnSeq2Seq::RnnSeq2Seq(const Config& config, int pad_id, int eos_id,
                       uint64_t seed)
    : config_(config),
      pad_id_(pad_id),
      eos_id_(eos_id),
      init_rng_(seed),
      embedding_(config.vocab_size, config.embed_dim, &init_rng_),
      encoder_(config.embed_dim, config.hidden_dim, &init_rng_),
      decoder_cell_(config.embed_dim, config.hidden_dim, &init_rng_),
      attn_hidden_(config.hidden_dim, config.hidden_dim, /*bias=*/true,
                   &init_rng_),
      attn_context_(config.hidden_dim, config.hidden_dim, /*bias=*/false,
                    &init_rng_),
      out_(config.hidden_dim, config.vocab_size, /*bias=*/true, &init_rng_) {
  RegisterModule("embedding", &embedding_);
  RegisterModule("encoder", &encoder_);
  RegisterModule("decoder_cell", &decoder_cell_);
  RegisterModule("attn_hidden", &attn_hidden_);
  RegisterModule("attn_context", &attn_context_);
  RegisterModule("out", &out_);
}

Tensor RnnSeq2Seq::StepLogits(const Tensor& x_t, Tensor* hidden,
                              const Tensor& enc_states, int batch, int enc_seq,
                              const std::vector<int>& enc_lengths) const {
  *hidden = decoder_cell_.Forward(x_t, *hidden);
  // Luong dot attention over encoder states.
  Tensor q3 = ops::Reshape(*hidden, {batch, 1, config_.hidden_dim});
  Tensor enc3 = ops::Reshape(enc_states, {batch, enc_seq, config_.hidden_dim});
  Tensor scores = ops::MatMulTransposeB(q3, enc3);        // [B, 1, T]
  Tensor scores4 = ops::Reshape(scores, {batch, 1, 1, enc_seq});
  Tensor attn = ops::MaskedSoftmax(scores4, enc_lengths, /*causal=*/false);
  Tensor attn3 = ops::Reshape(attn, {batch, 1, enc_seq});
  Tensor ctx = ops::MatMul(attn3, enc3);                  // [B, 1, H]
  Tensor ctx2 = ops::Reshape(ctx, {batch, config_.hidden_dim});
  Tensor combined = ops::Tanh(
      ops::Add(attn_hidden_.Forward(*hidden), attn_context_.Forward(ctx2)));
  return out_.Forward(combined);
}

Tensor RnnSeq2Seq::BatchLoss(const Batch& batch, bool train, Rng* rng) const {
  Tensor enc_emb = embedding_.Forward(batch.enc_ids);
  if (train && config_.dropout > 0) {
    enc_emb = ops::Dropout(enc_emb, config_.dropout, rng);
  }
  nn::GruEncoder::Output enc =
      encoder_.Forward(enc_emb, batch.batch, batch.enc_seq, batch.enc_lengths);

  Tensor hidden = enc.final;
  std::vector<Tensor> step_logits;  // time-major
  std::vector<int> targets_tm;
  targets_tm.reserve(batch.dec_target.size());
  for (int t = 0; t < batch.dec_seq; ++t) {
    std::vector<int> ids_t(static_cast<size_t>(batch.batch));
    for (int b = 0; b < batch.batch; ++b) {
      ids_t[static_cast<size_t>(b)] =
          batch.dec_input[static_cast<size_t>(b) * batch.dec_seq + t];
      targets_tm.push_back(
          batch.dec_target[static_cast<size_t>(b) * batch.dec_seq + t]);
    }
    Tensor x_t = embedding_.Forward(ids_t);
    if (train && config_.dropout > 0) {
      x_t = ops::Dropout(x_t, config_.dropout, rng);
    }
    step_logits.push_back(StepLogits(x_t, &hidden, enc.states, batch.batch,
                                     batch.enc_seq, batch.enc_lengths));
  }
  Tensor logits = ops::ConcatRows(step_logits);  // [(T*B), V]
  return ops::CrossEntropyLoss(logits, targets_tm, kIgnoreIndex);
}

std::vector<int> RnnSeq2Seq::Generate(const std::vector<int>& src,
                                      const GenerationOptions& options) const {
  NoGradGuard guard;
  const int src_len = static_cast<int>(src.size());
  const std::vector<int> enc_lengths = {src_len};
  Tensor enc_emb = embedding_.Forward(src);
  nn::GruEncoder::Output enc = encoder_.Forward(enc_emb, 1, src_len,
                                                enc_lengths);
  Tensor hidden = enc.final;
  std::vector<int> out;
  int prev = pad_id_;
  for (int step = 0; step < options.max_len; ++step) {
    Tensor x_t = embedding_.Forward(std::vector<int>{prev});
    Tensor logits =
        StepLogits(x_t, &hidden, enc.states, 1, src_len, enc_lengths);
    int best = -1;
    float best_score = -1e30f;
    for (int v = 0; v < logits.dim(1); ++v) {
      if (options.allowed && !options.allowed(v)) continue;
      if (logits.data()[static_cast<size_t>(v)] > best_score) {
        best_score = logits.data()[static_cast<size_t>(v)];
        best = v;
      }
    }
    if (best < 0 || best == eos_id_) break;
    out.push_back(best);
    prev = best;
  }
  return out;
}

}  // namespace model
}  // namespace vist5
