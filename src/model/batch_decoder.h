#ifndef VIST5_MODEL_BATCH_DECODER_H_
#define VIST5_MODEL_BATCH_DECODER_H_

#include <chrono>
#include <cstdint>
#include <vector>

#include "model/transformer_model.h"

namespace vist5 {
namespace model {

/// Continuous (in-flight) batching over a shared KV cache.
///
/// Requests are admitted one at a time — each is prefilled exactly like a
/// single Generate call (batch-of-one encode + cross K/V projection) and
/// merged into the running decode batch at a step boundary. Every Step()
/// advances all active rows by one token through DecodeStepRagged; rows
/// that emit EOS, hit max_len, exhaust their vocabulary constraint, or
/// blow their deadline are evicted and returned. Because every kernel on
/// the decode path is batch-row-pure, each request's token stream is
/// bit-identical to what a sequential Generate would produce, regardless
/// of which other requests share the batch (docs/SERVING.md).
///
/// Greedy-only: beam search reorders the whole batch and sampling consumes
/// per-request RNG state, so the serve scheduler runs those exclusively via
/// Generate instead. Not thread-safe; the scheduler owns one instance on
/// its decode thread.
class ContinuousDecoder {
 public:
  using Clock = std::chrono::steady_clock;

  struct Finished {
    uint64_t id = 0;
    std::vector<int> tokens;
    /// True when the row was evicted by its deadline; `tokens` then holds
    /// the best-so-far prefix.
    bool deadline_expired = false;
  };

  /// One token committed by a row during a Step, in batch order. A row
  /// that finishes on the same step (max_len reached) still reports its
  /// final token here, so the emitted stream concatenates to exactly the
  /// Finished::tokens sequence.
  struct Emitted {
    uint64_t id = 0;
    int token = 0;
  };

  explicit ContinuousDecoder(const TransformerSeq2Seq* model)
      : model_(model) {}

  /// Admits one request into the batch. `options` must be greedy
  /// (beam_size <= 1, temperature <= 0), and its weight_dtype must match
  /// batch_dtype() when rows are already active — the dtype is a per-batch
  /// property because every row shares each step's weight reads; the serve
  /// scheduler parks mismatched requests until the batch drains.
  /// `deadline` of Clock::time_point::max() disables the per-request
  /// deadline.
  ///
  /// When `prefill` is non-null it must hold exactly `src` at the batch's
  /// weight dtype; the encoder forward and cross K/V projection are then
  /// skipped and the cached block's tensors are spliced (aliased, not
  /// copied) into the batch state. Because blocks are immutable and every
  /// decode-path mutation of cross caches replaces the handle rather than
  /// writing through it, a spliced admit is bit-identical to a recomputed
  /// one (docs/SERVING.md).
  void Admit(uint64_t id, const std::vector<int>& src,
             const GenerationOptions& options,
             Clock::time_point deadline = Clock::time_point::max(),
             const EncodedPrefix* prefill = nullptr);

  /// Advances every active row by one token. Returns the rows that
  /// finished (or expired) during this step, in batch order. When
  /// `emitted` is non-null, the tokens committed this step are appended
  /// to it (rows that stop on EOS or expire in the pre-step sweep commit
  /// nothing) — the serve scheduler uses this to publish stream tokens at
  /// step boundaries (docs/SERVING.md).
  std::vector<Finished> Step(std::vector<Emitted>* emitted = nullptr);

  /// Number of requests currently decoding.
  int active() const { return static_cast<int>(rows_.size()); }

  /// Weight dtype of the running batch. Meaningful only while
  /// active() > 0 (set from the first admitted row, retained until the
  /// batch drains).
  WeightDtype batch_dtype() const { return batch_dtype_; }

 private:
  struct Row {
    uint64_t id = 0;
    GenerationOptions options;
    Clock::time_point deadline = Clock::time_point::max();
    std::vector<int> out;
    int prev = 0;  ///< last token fed (starts at the pad/start symbol)
  };

  /// Keeps only `survivors` (indices into the current batch order) in both
  /// the decode state and the row table.
  void Evict(const std::vector<int>& survivors);

  const TransformerSeq2Seq* model_;
  nn::DecodeState state_;
  std::vector<Row> rows_;
  WeightDtype batch_dtype_ = WeightDtype::kFloat32;
};

}  // namespace model
}  // namespace vist5

#endif  // VIST5_MODEL_BATCH_DECODER_H_
