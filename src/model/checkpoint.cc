#include "model/checkpoint.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <utility>

#include "obs/metrics.h"
#include "util/serialize.h"

namespace vist5 {
namespace model {
namespace {

// Module-parameter checkpoint ("VT5C"). v1: header + records. v2: adds a
// trailing CRC32 over everything before it, so torn/bit-flipped files are
// rejected up front instead of half-loaded.
constexpr uint32_t kMagic = 0x56543543;  // "VT5C"
constexpr uint32_t kVersion = 2;
constexpr uint32_t kMinSupportedVersion = 1;

// Training-state checkpoint ("VT5S"): sectioned container, each section
// payload carrying its own CRC32 (docs/CHECKPOINTING.md).
constexpr uint32_t kTrainMagic = 0x56543553;  // "VT5S"
constexpr uint32_t kTrainVersion = 1;

constexpr char kLatestFileName[] = "LATEST";
constexpr char kCheckpointPrefix[] = "ckpt_";
constexpr char kCheckpointSuffix[] = ".vt5s";

std::string DimsToString(const std::vector<int>& dims) {
  std::string out = "[";
  for (size_t i = 0; i < dims.size(); ++i) {
    if (i) out += ", ";
    out += std::to_string(dims[i]);
  }
  return out + "]";
}

// One stored parameter, decoded but not yet applied.
struct ParamRecord {
  std::string name;
  std::vector<int> dims;
  std::vector<float> data;
};

void WriteParamRecords(const nn::Module& module, BinaryWriter* writer) {
  const auto params = module.NamedParameters();
  writer->WriteU32(static_cast<uint32_t>(params.size()));
  for (const auto& [name, tensor] : params) {
    writer->WriteString(name);
    writer->WriteU32(static_cast<uint32_t>(tensor.shape().size()));
    for (int d : tensor.shape()) writer->WriteI32(d);
    writer->WriteFloats(tensor.data());
  }
}

Status ReadParamRecords(BinaryReader* reader,
                        std::vector<ParamRecord>* records) {
  uint32_t count = 0;
  VIST5_RETURN_IF_ERROR(reader->ReadU32(&count));
  records->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    ParamRecord record;
    VIST5_RETURN_IF_ERROR(reader->ReadString(&record.name));
    uint32_t ndim = 0;
    VIST5_RETURN_IF_ERROR(reader->ReadU32(&ndim));
    if (ndim > 8) {
      return Status::InvalidArgument("parameter '" + record.name +
                                     "' declares implausible rank " +
                                     std::to_string(ndim));
    }
    record.dims.resize(ndim);
    for (uint32_t d = 0; d < ndim; ++d) {
      int32_t dim = 0;
      VIST5_RETURN_IF_ERROR(reader->ReadI32(&dim));
      // A non-positive dim is corruption; a negative one would also poison
      // the element-count product used for the size cross-check below.
      if (dim <= 0) {
        return Status::InvalidArgument(
            "parameter '" + record.name + "' has non-positive dimension " +
            std::to_string(dim));
      }
      record.dims[d] = dim;
    }
    VIST5_RETURN_IF_ERROR(reader->ReadFloats(&record.data));
    int64_t numel = 1;
    for (int d : record.dims) numel *= d;
    if (static_cast<int64_t>(record.data.size()) != numel) {
      return Status::InvalidArgument(
          "parameter '" + record.name + "' carries " +
          std::to_string(record.data.size()) + " values for shape " +
          DimsToString(record.dims));
    }
    records->push_back(std::move(record));
  }
  return Status::OK();
}

// Validates every record against the module, then commits them all. The
// two-pass structure keeps loading transactional: a bad record in the
// middle of the file must not leave the module half-overwritten.
Status ApplyParamRecords(nn::Module* module,
                         std::vector<ParamRecord> records) {
  std::map<std::string, Tensor> by_name;
  for (auto& [name, tensor] : module->NamedParameters()) {
    by_name.emplace(name, tensor);
  }
  for (const ParamRecord& record : records) {
    auto it = by_name.find(record.name);
    if (it == by_name.end()) {
      return Status::NotFound("checkpoint parameter '" + record.name +
                              "' not present in module");
    }
    // Exact shape equality, not just matching element counts: a [2, 6]
    // blob must not silently load into a [3, 4] parameter.
    if (record.dims != it->second.shape()) {
      return Status::InvalidArgument(
          "shape mismatch for parameter '" + record.name + "': checkpoint " +
          DimsToString(record.dims) + " vs module " +
          DimsToString(it->second.shape()));
    }
  }
  for (ParamRecord& record : records) {
    by_name.find(record.name)->second.mutable_data() = std::move(record.data);
  }
  return Status::OK();
}

void AppendSection(BinaryWriter* out, const std::string& name,
                   const BinaryWriter& payload) {
  out->WriteString(name);
  out->WriteU64(payload.buffer().size());
  out->WriteBytes(payload.buffer());
  out->WriteU32(Crc32(payload.buffer()));
}

// Reads `count` sections, validating each payload's CRC before it is
// exposed to any parsing code.
Status ReadSections(BinaryReader* reader, uint32_t count,
                    std::map<std::string, std::string>* sections) {
  for (uint32_t i = 0; i < count; ++i) {
    std::string name;
    VIST5_RETURN_IF_ERROR(reader->ReadString(&name));
    uint64_t length = 0;
    VIST5_RETURN_IF_ERROR(reader->ReadU64(&length));
    if (length > reader->remaining()) {
      return Status::OutOfRange("checkpoint section '" + name + "' truncated");
    }
    std::string payload;
    VIST5_RETURN_IF_ERROR(reader->ReadBytes(length, &payload));
    uint32_t crc = 0;
    VIST5_RETURN_IF_ERROR(reader->ReadU32(&crc));
    if (Crc32(payload) != crc) {
      return Status::InvalidArgument("checkpoint section '" + name +
                                     "' failed CRC validation");
    }
    (*sections)[name] = std::move(payload);
  }
  return Status::OK();
}

StatusOr<std::string> RequireSection(
    const std::map<std::string, std::string>& sections,
    const std::string& name) {
  auto it = sections.find(name);
  if (it == sections.end()) {
    return Status::InvalidArgument("checkpoint missing section '" + name +
                                   "'");
  }
  return it->second;
}

void BuildTrainStateBuffer(const nn::Module& module, const TrainState& state,
                           BinaryWriter* out) {
  out->WriteU32(kTrainMagic);
  out->WriteU32(kTrainVersion);
  out->WriteU32(5);  // section count

  BinaryWriter meta;
  meta.WriteU64(state.seed);
  meta.WriteI32(state.batch_size);
  meta.WriteI32(state.grad_accum_shards);
  meta.WriteI32(state.max_src_len);
  meta.WriteI32(state.max_tgt_len);
  meta.WriteI32(state.pad_id);
  meta.WriteF32(state.peak_lr);
  meta.WriteF32(state.warmup_fraction);
  meta.WriteF32(state.weight_decay);
  meta.WriteF32(state.clip_norm);
  AppendSection(out, "meta", meta);

  BinaryWriter progress;
  progress.WriteU64(static_cast<uint64_t>(state.next_step));
  progress.WriteU64(static_cast<uint64_t>(state.total_steps));
  progress.WriteF32(state.first_loss);
  progress.WriteF64(state.tail_loss);
  progress.WriteU64(static_cast<uint64_t>(state.tail_count));
  AppendSection(out, "progress", progress);

  BinaryWriter rng;
  for (uint64_t word : state.rng_state) rng.WriteU64(word);
  AppendSection(out, "rng", rng);

  BinaryWriter adamw;
  adamw.WriteU64(static_cast<uint64_t>(state.opt_step));
  adamw.WriteU32(static_cast<uint32_t>(state.opt_m.size()));
  for (const auto& m : state.opt_m) adamw.WriteFloats(m);
  for (const auto& v : state.opt_v) adamw.WriteFloats(v);
  AppendSection(out, "adamw", adamw);

  BinaryWriter params;
  WriteParamRecords(module, &params);
  AppendSection(out, "model", params);
}

Status ParseTrainState(const std::map<std::string, std::string>& sections,
                       TrainState* state, std::vector<ParamRecord>* records) {
  VIST5_ASSIGN_OR_RETURN(std::string meta_bytes,
                         RequireSection(sections, "meta"));
  BinaryReader meta(std::move(meta_bytes));
  VIST5_RETURN_IF_ERROR(meta.ReadU64(&state->seed));
  VIST5_RETURN_IF_ERROR(meta.ReadI32(&state->batch_size));
  VIST5_RETURN_IF_ERROR(meta.ReadI32(&state->grad_accum_shards));
  VIST5_RETURN_IF_ERROR(meta.ReadI32(&state->max_src_len));
  VIST5_RETURN_IF_ERROR(meta.ReadI32(&state->max_tgt_len));
  VIST5_RETURN_IF_ERROR(meta.ReadI32(&state->pad_id));
  VIST5_RETURN_IF_ERROR(meta.ReadF32(&state->peak_lr));
  VIST5_RETURN_IF_ERROR(meta.ReadF32(&state->warmup_fraction));
  VIST5_RETURN_IF_ERROR(meta.ReadF32(&state->weight_decay));
  VIST5_RETURN_IF_ERROR(meta.ReadF32(&state->clip_norm));

  VIST5_ASSIGN_OR_RETURN(std::string progress_bytes,
                         RequireSection(sections, "progress"));
  BinaryReader progress(std::move(progress_bytes));
  uint64_t next_step = 0, total_steps = 0, tail_count = 0;
  VIST5_RETURN_IF_ERROR(progress.ReadU64(&next_step));
  VIST5_RETURN_IF_ERROR(progress.ReadU64(&total_steps));
  VIST5_RETURN_IF_ERROR(progress.ReadF32(&state->first_loss));
  VIST5_RETURN_IF_ERROR(progress.ReadF64(&state->tail_loss));
  VIST5_RETURN_IF_ERROR(progress.ReadU64(&tail_count));
  state->next_step = static_cast<int64_t>(next_step);
  state->total_steps = static_cast<int64_t>(total_steps);
  state->tail_count = static_cast<int64_t>(tail_count);

  VIST5_ASSIGN_OR_RETURN(std::string rng_bytes,
                         RequireSection(sections, "rng"));
  BinaryReader rng(std::move(rng_bytes));
  for (uint64_t& word : state->rng_state) {
    VIST5_RETURN_IF_ERROR(rng.ReadU64(&word));
  }

  VIST5_ASSIGN_OR_RETURN(std::string adamw_bytes,
                         RequireSection(sections, "adamw"));
  BinaryReader adamw(std::move(adamw_bytes));
  uint64_t opt_step = 0;
  uint32_t moment_count = 0;
  VIST5_RETURN_IF_ERROR(adamw.ReadU64(&opt_step));
  VIST5_RETURN_IF_ERROR(adamw.ReadU32(&moment_count));
  state->opt_step = static_cast<int64_t>(opt_step);
  state->opt_m.resize(moment_count);
  state->opt_v.resize(moment_count);
  for (auto& m : state->opt_m) VIST5_RETURN_IF_ERROR(adamw.ReadFloats(&m));
  for (auto& v : state->opt_v) VIST5_RETURN_IF_ERROR(adamw.ReadFloats(&v));

  VIST5_ASSIGN_OR_RETURN(std::string model_bytes,
                         RequireSection(sections, "model"));
  BinaryReader params(std::move(model_bytes));
  VIST5_RETURN_IF_ERROR(ReadParamRecords(&params, records));
  return Status::OK();
}

// Steps of every `ckpt_<step>.vt5s` file in `dir`, descending.
std::vector<int64_t> ListCheckpointSteps(const std::string& dir) {
  std::vector<int64_t> steps;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    const size_t prefix_len = sizeof(kCheckpointPrefix) - 1;
    const size_t suffix_len = sizeof(kCheckpointSuffix) - 1;
    if (name.size() <= prefix_len + suffix_len) continue;
    if (name.compare(0, prefix_len, kCheckpointPrefix) != 0) continue;
    if (name.compare(name.size() - suffix_len, suffix_len,
                     kCheckpointSuffix) != 0) continue;
    const std::string digits =
        name.substr(prefix_len, name.size() - prefix_len - suffix_len);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    steps.push_back(std::strtoll(digits.c_str(), nullptr, 10));
  }
  std::sort(steps.rbegin(), steps.rend());
  return steps;
}

}  // namespace

Status SaveCheckpoint(const nn::Module& module, const std::string& path) {
  BinaryWriter writer;
  writer.WriteU32(kMagic);
  writer.WriteU32(kVersion);
  WriteParamRecords(module, &writer);
  writer.WriteU32(Crc32(writer.buffer()));
  return writer.Flush(path);
}

Status LoadCheckpoint(nn::Module* module, const std::string& path) {
  VIST5_ASSIGN_OR_RETURN(BinaryReader reader, BinaryReader::FromFile(path));
  uint32_t magic = 0, version = 0;
  VIST5_RETURN_IF_ERROR(reader.ReadU32(&magic));
  if (magic != kMagic) {
    return Status::InvalidArgument("not a checkpoint file: " + path);
  }
  VIST5_RETURN_IF_ERROR(reader.ReadU32(&version));
  if (version < kMinSupportedVersion || version > kVersion) {
    return Status::InvalidArgument("unsupported checkpoint version " +
                                   std::to_string(version));
  }
  if (version >= 2) {
    // The last 4 bytes checksum everything before them; verify before
    // parsing a single record.
    const std::string& bytes = reader.data();
    if (bytes.size() < sizeof(uint32_t)) {
      return Status::OutOfRange("checkpoint too short for CRC: " + path);
    }
    uint32_t stored = 0;
    std::memcpy(&stored, bytes.data() + bytes.size() - sizeof(uint32_t),
                sizeof(uint32_t));
    if (Crc32(bytes.data(), bytes.size() - sizeof(uint32_t)) != stored) {
      return Status::InvalidArgument("checkpoint failed CRC validation: " +
                                     path);
    }
  }
  std::vector<ParamRecord> records;
  VIST5_RETURN_IF_ERROR(ReadParamRecords(&reader, &records));
  return ApplyParamRecords(module, std::move(records));
}

bool CheckpointExists(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  uint32_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  return in && magic == kMagic;
}

Status SaveTrainState(const nn::Module& module, const TrainState& state,
                      const std::string& path) {
  BinaryWriter writer;
  BuildTrainStateBuffer(module, state, &writer);
  return writer.Flush(path);
}

Status LoadTrainState(nn::Module* module, TrainState* state,
                      const std::string& path) {
  VIST5_ASSIGN_OR_RETURN(BinaryReader reader, BinaryReader::FromFile(path));
  uint32_t magic = 0, version = 0, section_count = 0;
  VIST5_RETURN_IF_ERROR(reader.ReadU32(&magic));
  if (magic != kTrainMagic) {
    return Status::InvalidArgument("not a training-state checkpoint: " + path);
  }
  VIST5_RETURN_IF_ERROR(reader.ReadU32(&version));
  if (version != kTrainVersion) {
    return Status::InvalidArgument(
        "unsupported training-state checkpoint version " +
        std::to_string(version));
  }
  VIST5_RETURN_IF_ERROR(reader.ReadU32(&section_count));
  std::map<std::string, std::string> sections;
  VIST5_RETURN_IF_ERROR(ReadSections(&reader, section_count, &sections));

  // Parse into temporaries and validate parameter shapes before touching
  // `module` or `state`: loading is all-or-nothing.
  TrainState parsed;
  std::vector<ParamRecord> records;
  VIST5_RETURN_IF_ERROR(ParseTrainState(sections, &parsed, &records));
  VIST5_RETURN_IF_ERROR(ApplyParamRecords(module, std::move(records)));
  *state = std::move(parsed);
  return Status::OK();
}

std::string TrainCheckpointPath(const std::string& dir, int64_t step) {
  return dir + "/" + kCheckpointPrefix + std::to_string(step) +
         kCheckpointSuffix;
}

Status SaveTrainCheckpoint(const nn::Module& module, const TrainState& state,
                           const std::string& dir, int keep_last) {
  const auto start = std::chrono::steady_clock::now();
  BinaryWriter writer;
  BuildTrainStateBuffer(module, state, &writer);
  const std::string path = TrainCheckpointPath(dir, state.next_step);
  VIST5_RETURN_IF_ERROR(writer.Flush(path));
  // Repoint LATEST only after the checkpoint file itself is durable: a
  // SIGKILL between the two writes leaves LATEST on the previous valid
  // checkpoint, never on a torn file.
  VIST5_RETURN_IF_ERROR(
      AtomicWriteFile(dir + "/" + kLatestFileName,
                      std::filesystem::path(path).filename().string() + "\n"));

  if (keep_last > 0) {
    const std::vector<int64_t> steps = ListCheckpointSteps(dir);
    for (size_t i = static_cast<size_t>(keep_last); i < steps.size(); ++i) {
      std::error_code ec;
      std::filesystem::remove(TrainCheckpointPath(dir, steps[i]), ec);
    }
  }

  const double save_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  obs::GetCounter("checkpoint/saves")->Add();
  obs::GetCounter("checkpoint/bytes")->Add(
      static_cast<int64_t>(writer.buffer().size()));
  obs::GetHistogram("checkpoint/save_ms")->Observe(save_ms);
  obs::GetGauge("checkpoint/last_step")
      ->Set(static_cast<double>(state.next_step));
  return Status::OK();
}

Status ResumeTrainState(nn::Module* module, TrainState* state,
                        const std::string& dir) {
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) {
    return Status::NotFound("no checkpoint directory: " + dir);
  }

  std::vector<std::string> candidates;
  std::ifstream latest(dir + "/" + kLatestFileName);
  std::string latest_name;
  if (latest && std::getline(latest, latest_name) && !latest_name.empty()) {
    candidates.push_back(dir + "/" + latest_name);
  }
  for (int64_t step : ListCheckpointSteps(dir)) {
    const std::string path = TrainCheckpointPath(dir, step);
    if (candidates.empty() || candidates.front() != path) {
      candidates.push_back(path);
    }
  }
  if (candidates.empty()) {
    return Status::NotFound("no checkpoint in " + dir);
  }

  Status last_error = Status::NotFound("no checkpoint in " + dir);
  for (const std::string& path : candidates) {
    const Status loaded = LoadTrainState(module, state, path);
    if (loaded.ok()) {
      obs::GetCounter("checkpoint/resumes")->Add();
      obs::GetGauge("checkpoint/resume_step")
          ->Set(static_cast<double>(state->next_step));
      return Status::OK();
    }
    last_error = loaded;
  }
  return last_error;
}

}  // namespace model
}  // namespace vist5
