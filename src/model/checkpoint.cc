#include "model/checkpoint.h"

#include <fstream>
#include <map>

#include "util/serialize.h"

namespace vist5 {
namespace model {
namespace {

constexpr uint32_t kMagic = 0x56543543;  // "VT5C"
constexpr uint32_t kVersion = 1;

}  // namespace

Status SaveCheckpoint(const nn::Module& module, const std::string& path) {
  BinaryWriter writer;
  writer.WriteU32(kMagic);
  writer.WriteU32(kVersion);
  const auto params = module.NamedParameters();
  writer.WriteU32(static_cast<uint32_t>(params.size()));
  for (const auto& [name, tensor] : params) {
    writer.WriteString(name);
    writer.WriteU32(static_cast<uint32_t>(tensor.shape().size()));
    for (int d : tensor.shape()) writer.WriteI32(d);
    writer.WriteFloats(tensor.data());
  }
  return writer.Flush(path);
}

Status LoadCheckpoint(nn::Module* module, const std::string& path) {
  VIST5_ASSIGN_OR_RETURN(BinaryReader reader, BinaryReader::FromFile(path));
  uint32_t magic = 0, version = 0, count = 0;
  VIST5_RETURN_IF_ERROR(reader.ReadU32(&magic));
  if (magic != kMagic) {
    return Status::InvalidArgument("not a checkpoint file: " + path);
  }
  VIST5_RETURN_IF_ERROR(reader.ReadU32(&version));
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported checkpoint version");
  }
  VIST5_RETURN_IF_ERROR(reader.ReadU32(&count));

  std::map<std::string, Tensor> by_name;
  for (auto& [name, tensor] : module->NamedParameters()) {
    by_name.emplace(name, tensor);
  }
  for (uint32_t i = 0; i < count; ++i) {
    std::string name;
    VIST5_RETURN_IF_ERROR(reader.ReadString(&name));
    uint32_t ndim = 0;
    VIST5_RETURN_IF_ERROR(reader.ReadU32(&ndim));
    int64_t numel = 1;
    for (uint32_t d = 0; d < ndim; ++d) {
      int32_t dim = 0;
      VIST5_RETURN_IF_ERROR(reader.ReadI32(&dim));
      numel *= dim;
    }
    std::vector<float> data;
    VIST5_RETURN_IF_ERROR(reader.ReadFloats(&data));
    auto it = by_name.find(name);
    if (it == by_name.end()) {
      return Status::NotFound("checkpoint parameter '" + name +
                              "' not present in module");
    }
    if (static_cast<int64_t>(data.size()) != it->second.NumElements() ||
        static_cast<int64_t>(data.size()) != numel) {
      return Status::InvalidArgument("shape mismatch for parameter '" + name +
                                     "'");
    }
    it->second.mutable_data() = std::move(data);
  }
  return Status::OK();
}

bool CheckpointExists(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  uint32_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  return in && magic == kMagic;
}

}  // namespace model
}  // namespace vist5
