#ifndef VIST5_MODEL_TRAINER_H_
#define VIST5_MODEL_TRAINER_H_

#include <vector>

#include "model/seq2seq_model.h"
#include "tensor/optimizer.h"

namespace vist5 {
namespace model {

/// Training hyperparameters (mirrors Sec. V-A: AdamW with weight decay
/// 0.01, linear warmup with rate 0.1, gradient clipping).
struct TrainOptions {
  int steps = 300;
  int batch_size = 8;
  float peak_lr = 3e-3f;
  float warmup_fraction = 0.1f;
  float weight_decay = 0.01f;
  float clip_norm = 1.0f;
  int max_src_len = 112;
  int max_tgt_len = 56;
  uint64_t seed = 7;
  /// Print a loss line every N steps; 0 silences progress.
  int log_every = 0;
};

/// Result diagnostics from one training run.
struct TrainStats {
  float first_loss = 0;
  float final_loss = 0;  ///< mean loss over the last 10% of steps
  int steps = 0;
};

/// Trains `model` on `pairs` by weighted sampling with replacement (the
/// per-example `weight` field implements temperature up-sampling for
/// multi-task fine-tuning; uniform weights reduce to ordinary shuffling).
TrainStats TrainSeq2Seq(Seq2SeqModel* model, const std::vector<SeqPair>& pairs,
                        int pad_id, const TrainOptions& options);

}  // namespace model
}  // namespace vist5

#endif  // VIST5_MODEL_TRAINER_H_
