#ifndef VIST5_MODEL_TRAINER_H_
#define VIST5_MODEL_TRAINER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "model/seq2seq_model.h"
#include "tensor/optimizer.h"

namespace vist5 {
namespace model {

/// Per-step telemetry published by TrainSeq2Seq: everything a dashboard,
/// tuner, or regression harness needs to follow a run. The same values are
/// mirrored into the obs metrics registry under "trainer/*".
struct StepInfo {
  int step = 0;             ///< 0-based step index
  int total_steps = 0;
  float loss = 0;
  float grad_norm = 0;      ///< global L2 norm before clipping
  float lr = 0;             ///< learning rate applied this step
  int batch_tokens = 0;     ///< encoder + decoder tokens in the batch
  double tokens_per_sec = 0;
  double step_ms = 0;       ///< wall time of this step
  int64_t peak_rss_bytes = 0;
};

/// Called after every optimizer step. Keep it cheap: it runs on the
/// training thread.
using StepObserver = std::function<void(const StepInfo&)>;

/// Training hyperparameters (mirrors Sec. V-A: AdamW with weight decay
/// 0.01, linear warmup with rate 0.1, gradient clipping).
struct TrainOptions {
  int steps = 300;
  int batch_size = 8;
  float peak_lr = 3e-3f;
  float warmup_fraction = 0.1f;
  float weight_decay = 0.01f;
  float clip_norm = 1.0f;
  int max_src_len = 112;
  int max_tgt_len = 56;
  uint64_t seed = 7;
  /// Split each step's batch into this many contiguous micro-batch shards
  /// and accumulate their gradients before the single optimizer step. The
  /// shards are processed serially in index order and each shard's loss is
  /// scaled by its share of the step's target tokens, so the reduction
  /// order is fixed regardless of thread count — the parallelism comes from
  /// the intra-op kernels (see docs/PARALLELISM.md). Clamped to
  /// [1, batch_size]; 1 (the default) is the unsharded fast path.
  int grad_accum_shards = 1;
  /// Print a progress line (loss, grad-norm, lr, tokens/sec) every N
  /// steps; 0 silences progress.
  int log_every = 0;
  /// --- Crash-safe checkpointing (docs/CHECKPOINTING.md) ---
  /// Directory for training-state checkpoints (`ckpt_<step>.vt5s` plus a
  /// `LATEST` pointer, all written atomically); empty disables
  /// checkpointing. Requires a module-backed model
  /// (Seq2SeqModel::CheckpointModule() != nullptr).
  std::string checkpoint_dir;
  /// Save a checkpoint every N optimizer steps (anchored at absolute step
  /// indices, so a resumed run saves at the same steps an uninterrupted
  /// one would). 0 saves only at the end of the run / at a
  /// max_steps_per_run stop.
  int checkpoint_every = 0;
  /// Retain this many newest checkpoint files, pruning older ones after
  /// each save; <= 0 keeps everything.
  int keep_last = 2;
  /// Resume from the newest valid checkpoint in checkpoint_dir when one
  /// exists. The restored run continues bit-exactly — same weights, AdamW
  /// moments, LR-schedule position, and RNG/sampler stream — as a run that
  /// was never interrupted. The checkpoint's config fingerprint must match
  /// these options.
  bool resume = true;
  /// Stop — after writing a checkpoint — once this many optimizer steps
  /// have run in THIS invocation; 0 runs to completion. Graceful
  /// preemption for time-sliced jobs (call again with the same options to
  /// continue); only meaningful with a checkpoint_dir.
  int max_steps_per_run = 0;
  /// Optional per-step telemetry hook (in addition to the always-on
  /// "trainer/*" metrics).
  StepObserver observer;
};

/// Result diagnostics from one training run.
struct TrainStats {
  float first_loss = 0;
  float final_loss = 0;  ///< mean loss over the last 10% of steps
  int steps = 0;
  /// First step executed by this invocation (> 0 when a checkpoint was
  /// resumed; == steps when the run was already complete on disk).
  int start_step = 0;
  /// Steps actually executed in this invocation (differs from `steps`
  /// after a resume or a max_steps_per_run stop).
  int steps_this_run = 0;
};

/// Trains `model` on `pairs` by weighted sampling with replacement (the
/// per-example `weight` field implements temperature up-sampling for
/// multi-task fine-tuning; uniform weights reduce to ordinary shuffling).
TrainStats TrainSeq2Seq(Seq2SeqModel* model, const std::vector<SeqPair>& pairs,
                        int pad_id, const TrainOptions& options);

}  // namespace model
}  // namespace vist5

#endif  // VIST5_MODEL_TRAINER_H_
